"""Tests for RTP packet model and wire serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.rtp import (
    RtpPacket,
    RTP_HEADER_BYTES,
    TWCC_EXTENSION_BYTES,
    SEQ_MOD,
    seq_distance,
    seq_less_than,
    timestamp_for,
)


class TestSequenceMath:
    def test_forward_distance(self):
        assert seq_distance(10, 15) == 5

    def test_backward_distance(self):
        assert seq_distance(15, 10) == -5

    def test_wraparound_forward(self):
        assert seq_distance(65_530, 4) == 10

    def test_wraparound_backward(self):
        assert seq_distance(4, 65_530) == -10

    def test_less_than(self):
        assert seq_less_than(10, 11)
        assert not seq_less_than(11, 10)
        assert seq_less_than(65_535, 0)

    @given(st.integers(0, SEQ_MOD - 1), st.integers(0, SEQ_MOD - 1))
    def test_distance_antisymmetric(self, a, b):
        d1, d2 = seq_distance(a, b), seq_distance(b, a)
        if d1 != -(SEQ_MOD // 2):  # the ambiguous midpoint
            assert d1 == -d2

    @given(st.integers(0, SEQ_MOD - 1), st.integers(-1000, 1000))
    def test_distance_recovers_offset(self, base, offset):
        other = (base + offset) % SEQ_MOD
        assert seq_distance(base, other) == offset


class TestTimestampFor:
    def test_90khz_mapping(self):
        assert timestamp_for(1.0) == 90_000

    def test_wraps_modulo_32_bits(self):
        big = timestamp_for(2**32 / 90_000 + 1.0)
        assert 0 <= big < 2**32


class TestRtpPacket:
    def make(self, **kwargs):
        defaults = dict(ssrc=0x1234, sequence=7, timestamp=9000, payload_size=1200)
        defaults.update(kwargs)
        return RtpPacket(**defaults)

    def test_header_size_without_extension(self):
        assert self.make().header_size == RTP_HEADER_BYTES

    def test_header_size_with_twcc(self):
        packet = self.make(transport_seq=55)
        assert packet.header_size == RTP_HEADER_BYTES + TWCC_EXTENSION_BYTES

    def test_wire_size_includes_payload(self):
        assert self.make(payload_size=100).wire_size == RTP_HEADER_BYTES + 100

    def test_rejects_out_of_range_sequence(self):
        with pytest.raises(ValueError):
            self.make(sequence=SEQ_MOD)

    def test_rejects_negative_payload(self):
        with pytest.raises(ValueError):
            self.make(payload_size=-1)

    def test_serialized_length_matches_wire_size(self):
        packet = self.make(transport_seq=99)
        assert len(packet.to_bytes()) == packet.wire_size

    def test_roundtrip_basic(self):
        packet = self.make(marker=True, payload_type=97)
        parsed = RtpPacket.from_bytes(packet.to_bytes())
        assert parsed.ssrc == packet.ssrc
        assert parsed.sequence == packet.sequence
        assert parsed.timestamp == packet.timestamp
        assert parsed.marker is True
        assert parsed.payload_type == 97
        assert parsed.payload_size == packet.payload_size
        assert parsed.transport_seq is None

    def test_roundtrip_with_transport_seq(self):
        packet = self.make(transport_seq=0xBEEF & 0x7FFF)
        parsed = RtpPacket.from_bytes(packet.to_bytes())
        assert parsed.transport_seq == packet.transport_seq

    def test_from_bytes_rejects_short_input(self):
        with pytest.raises(ValueError):
            RtpPacket.from_bytes(b"\x80\x60")

    def test_from_bytes_rejects_wrong_version(self):
        data = bytearray(self.make().to_bytes())
        data[0] = 0x00  # version 0
        with pytest.raises(ValueError):
            RtpPacket.from_bytes(bytes(data))

    @given(
        seq=st.integers(0, SEQ_MOD - 1),
        ts=st.integers(0, 2**32 - 1),
        size=st.integers(0, 1500),
        marker=st.booleans(),
        tseq=st.one_of(st.none(), st.integers(0, SEQ_MOD - 1)),
    )
    def test_roundtrip_property(self, seq, ts, size, marker, tseq):
        packet = RtpPacket(
            ssrc=42,
            sequence=seq,
            timestamp=ts,
            payload_size=size,
            marker=marker,
            transport_seq=tseq,
        )
        parsed = RtpPacket.from_bytes(packet.to_bytes())
        assert parsed.sequence == seq
        assert parsed.timestamp == ts
        assert parsed.payload_size == size
        assert parsed.marker == marker
        assert parsed.transport_seq == tseq
