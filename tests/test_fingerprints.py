"""Bit-identity gates: every batched/derived execution path must
reproduce the scalar simulator packet-for-packet.

Seven pinned configs span the scenario axes that exercise different
code paths in the batched kernels — CC algorithm (per-run control
state), environment (propagation config), platform (shared air
trajectory vs per-seed ground routes), operator (layout), and the
``extra`` overrides that reshape handover behaviour. For each config
the suite pins:

* batched channel probes == per-seed scalar probes;
* batched sessions (``SweepDrawPlan`` preloads via the runner's batch
  executor) == per-seed scalar ``run_session``;
* an N=1 fleet == the plain session;
* a traced (``Recorder``) session == an untraced one;
* the vectorized fleet fast path (struct-of-arrays contention +
  member-stacked tick plans + the shared fleet ticker) == the scalar
  reference contention, across pinned fleet configs that exercise
  handovers under load balancing, admission caps, and ground routes;
* a metrics-level fleet (``obs="metrics"``, the vectorized
  :class:`FleetMetricsPlane` riding the fleet ticker) == the dark
  fleet, and its plane snapshot is itself bit-identical between the
  fast and scalar arms;
* a sample-traced fleet (``trace_members``) == the dark fleet, its
  member traces invariant across arms, and for N=1 identical to a
  plain traced session.

Comparisons are exact float equality through
:mod:`repro.core.fingerprint` — no tolerances. Any drift here means a
refactor changed draw order or arithmetic, which silently invalidates
every cached campaign result; CI runs this file as its own job.
"""

import pytest

from repro.cellular.cell import CellCapacityConfig
from repro.core.config import ScenarioConfig
from repro.core.fingerprint import probe_fingerprint, session_fingerprint
from repro.core.fleet import FleetConfig, run_fleet
from repro.core.session import run_session
from repro.experiments.probes import channel_probe_batch, channel_probe_seed
from repro.obs import Recorder
from repro.runner import WORK_SESSION, execute_batch, plan_batches
from repro.runner.work import make_unit

#: The seven pinned configs (duration/seed applied per test).
PINNED = {
    "static-urban-air": ScenarioConfig(
        cc="static", environment="urban", platform="air"
    ),
    "gcc-urban-air": ScenarioConfig(
        cc="gcc", environment="urban", platform="air"
    ),
    "scream-urban-ground": ScenarioConfig(
        cc="scream", environment="urban", platform="ground"
    ),
    "static-rural-air": ScenarioConfig(
        cc="static", environment="rural", platform="air"
    ),
    "gcc-rural-ground": ScenarioConfig(
        cc="gcc", environment="rural", platform="ground"
    ),
    "static-urban-air-P2": ScenarioConfig(
        cc="static", environment="urban", platform="air", operator="P2"
    ),
    "gcc-urban-air-mbb": ScenarioConfig(
        cc="gcc",
        environment="urban",
        platform="air",
        extra={"make_before_break": True},
    ),
}

PROBE_SEEDS = (1, 2, 3, 4)
SESSION_SEEDS = (1, 2)
PROBE_DURATION = 60.0
SESSION_DURATION = 10.0


@pytest.mark.parametrize("name", sorted(PINNED))
def test_probe_batch_bit_identical(name):
    configs = [
        PINNED[name].with_overrides(seed=seed, duration=PROBE_DURATION)
        for seed in PROBE_SEEDS
    ]
    scalar = [probe_fingerprint(channel_probe_seed(c)) for c in configs]
    batched = [probe_fingerprint(p) for p in channel_probe_batch(configs)]
    assert batched == scalar


@pytest.mark.parametrize("name", sorted(PINNED))
def test_session_batch_bit_identical(name):
    configs = [
        PINNED[name].with_overrides(seed=seed, duration=SESSION_DURATION)
        for seed in SESSION_SEEDS
    ]
    scalar = [session_fingerprint(run_session(c)) for c in configs]
    units = [make_unit(WORK_SESSION, c) for c in configs]
    plans, leftovers = plan_batches(list(enumerate(units)))
    assert leftovers == [] and len(plans) == 1
    batched = [session_fingerprint(r) for r in execute_batch(plans[0])]
    assert batched == scalar


#: Pinned fleet configs for the fast == scalar contention gate. Axes:
#: load-balancing CIO churn under GCC, admission caps small enough to
#: block cells mid-run (forcing the ticker's per-member fallback), and
#: per-seed ground routes (no shared trajectory cache).
FLEET_PINNED = {
    "gcc-urban-air-n4": dict(
        base=ScenarioConfig(cc="gcc", environment="urban", platform="air"),
        num_sessions=4,
        spread_radius=50.0,
    ),
    "static-rural-air-n6-cap2": dict(
        base=ScenarioConfig(cc="static", environment="rural", platform="air"),
        num_sessions=6,
        spread_radius=30.0,
        cell_capacity=CellCapacityConfig(max_sessions=2),
    ),
    "scream-urban-ground-n3": dict(
        base=ScenarioConfig(
            cc="scream", environment="urban", platform="ground"
        ),
        num_sessions=3,
        spread_radius=80.0,
    ),
}


@pytest.mark.parametrize("name", sorted(FLEET_PINNED))
def test_fleet_fast_bit_identical_to_scalar(name):
    spec = dict(FLEET_PINNED[name])
    spec["base"] = spec["base"].with_overrides(
        seed=3, duration=SESSION_DURATION
    )
    config = FleetConfig(**spec)
    fast = run_fleet(config, fast=True)
    scalar = run_fleet(config, fast=False)
    assert [session_fingerprint(s) for s in fast.sessions] == [
        session_fingerprint(s) for s in scalar.sessions
    ]
    assert fast.occupancy == scalar.occupancy
    assert fast.peak_occupancy == scalar.peak_occupancy
    assert fast.congestion_time == scalar.congestion_time


def test_n1_fleet_bit_identical_to_session():
    config = PINNED["static-urban-air"].with_overrides(
        seed=3, duration=SESSION_DURATION
    )
    single = session_fingerprint(run_session(config))
    fleet = run_fleet(FleetConfig(base=config, num_sessions=1))
    assert session_fingerprint(fleet.sessions[0]) == single


def test_traced_session_bit_identical_to_untraced():
    config = PINNED["gcc-urban-air"].with_overrides(
        seed=5, duration=SESSION_DURATION
    )
    untraced = session_fingerprint(run_session(config))
    traced = session_fingerprint(run_session(config, recorder=Recorder()))
    assert traced == untraced


def _fleet_config(name: str) -> FleetConfig:
    spec = dict(FLEET_PINNED[name])
    spec["base"] = spec["base"].with_overrides(
        seed=3, duration=SESSION_DURATION
    )
    return FleetConfig(**spec)


@pytest.mark.parametrize("name", sorted(FLEET_PINNED))
def test_metrics_fleet_bit_identical_to_off(name):
    """obs="metrics" must not perturb a single packet or draw."""
    config = _fleet_config(name)
    dark = run_fleet(config)
    metered = run_fleet(config, obs="metrics")
    assert [session_fingerprint(s) for s in metered.sessions] == [
        session_fingerprint(s) for s in dark.sessions
    ]
    assert metered.occupancy == dark.occupancy
    assert metered.congestion_time == dark.congestion_time


@pytest.mark.parametrize("name", sorted(FLEET_PINNED))
def test_metrics_plane_bit_identical_across_arms(name):
    """The vectorized plane must reproduce the scalar replay exactly.

    Snapshots are exact-equality dicts of float sums/mins/maxs, so any
    reordering of the per-tick ingest arithmetic shows up here.
    """
    config = _fleet_config(name)
    fast = run_fleet(config, obs="metrics", fast=True)
    scalar = run_fleet(config, obs="metrics", fast=False)
    fast_plane = [
        r for r in fast.extra["metrics"]
        if r["name"].startswith("fleet/")
    ]
    scalar_plane = [
        r for r in scalar.extra["metrics"]
        if r["name"].startswith("fleet/")
    ]
    assert fast_plane == scalar_plane
    assert fast_plane  # the plane actually recorded something


def test_sampled_trace_fleet_bit_identical_to_off():
    """trace_members must not perturb the untraced members' packets."""
    config = _fleet_config("gcc-urban-air-n4")
    sampled = FleetConfig(
        **{
            **FLEET_PINNED["gcc-urban-air-n4"],
            "base": config.base,
            "trace_members": (1, 3),
        }
    )
    dark = run_fleet(config)
    traced = run_fleet(sampled)
    assert [session_fingerprint(s) for s in traced.sessions] == [
        session_fingerprint(s) for s in dark.sessions
    ]
    assert traced.extra["trace_members"] == [1, 3]


def test_sampled_member_trace_invariant_across_arms():
    """A sampled member's full trace must not depend on the arm.

    The traced member runs the plan-None scalar path in both arms; if
    the fast arm's ticker changed its draw order the recorded trace
    (sim-time stamps included) would drift.
    """
    config = FleetConfig(
        **{
            **FLEET_PINNED["gcc-urban-air-n4"],
            "base": _fleet_config("gcc-urban-air-n4").base,
            "trace_members": (2,),
        }
    )
    fast = run_fleet(config, fast=True)
    scalar = run_fleet(config, fast=False)
    assert fast.extra["member_traces"]["2"]["trace"] == (
        scalar.extra["member_traces"]["2"]["trace"]
    )
    assert fast.extra["member_traces"]["2"]["metrics"] == (
        scalar.extra["member_traces"]["2"]["metrics"]
    )


def test_n1_sampled_member_trace_matches_session_trace():
    """An N=1 fleet's sampled member records the session's exact trace.

    The fleet adds one ``fleet.member_sample`` marker and the plain
    session appends its ``obs.overhead`` self-event; everything else —
    every record, stamp and label, in order — must match.
    """
    config = PINNED["static-urban-air"].with_overrides(
        seed=3, duration=SESSION_DURATION
    )
    fleet = run_fleet(
        FleetConfig(base=config, num_sessions=1, trace_members=(0,))
    )
    recorder = Recorder()
    run_session(config, recorder=recorder)
    from repro.obs import trace_to_dicts

    member = [
        r for r in fleet.extra["member_traces"]["0"]["trace"]
        if r["name"] != "fleet.member_sample"
    ]
    session = [
        r for r in trace_to_dicts(recorder.trace)
        if r["name"] != "obs.overhead"
    ]
    assert member == session
