"""Tests for the whole-program lint engine and rules RPL007-010.

Fixture projects are plain ``{path: source}`` dicts fed straight to
:func:`build_project` / :func:`lint_project` — no disk needed — with
paths under ``src/repro/`` so callee keys resolve like real project
modules.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    FactsCache,
    Finding,
    build_project,
    lint_project,
    render_json,
    render_sarif,
)
from repro.lint.crossrules import render_trace_schema, run_cross_rules
from repro.lint.project import content_hash, module_name_for
from repro.lint.runner import run_cli

REPO_ROOT = Path(__file__).resolve().parent.parent

# The whole-program analysis scope (mirrors DEFAULT_PATHS).
REPO_TARGETS = ["src", "tools", "examples", "benchmarks"]


def cross_ids(sources: dict[str, str]) -> list[str]:
    index, errors = build_project(sources)
    assert errors == []
    return sorted(f.rule_id for f in run_cross_rules(index))


def repo_sources() -> dict[str, str]:
    from repro.lint.runner import iter_python_files

    targets = [REPO_ROOT / name for name in REPO_TARGETS]
    return {
        str(path): path.read_text(encoding="utf-8")
        for path in iter_python_files([t for t in targets if t.exists()])
    }


# ----------------------------------------------------------------------
# engine: module naming, symbol table, call resolution
# ----------------------------------------------------------------------
class TestEngine:
    def test_module_name_for(self):
        assert module_name_for("src/repro/net/path.py") == "repro.net.path"
        assert module_name_for("src/repro/obs/__init__.py") == "repro.obs"
        assert module_name_for("tools/cc_bench.py") == "tools.cc_bench"
        assert (
            module_name_for("benchmarks/test_fig4_handover.py")
            == "benchmarks.test_fig4_handover"
        )

    def test_symbol_table_and_call_graph(self):
        sources = {
            "src/repro/fake_api.py": (
                "class Channel:\n"
                "    def __init__(self, capacity_bps):\n"
                "        self.capacity_bps = capacity_bps\n"
                "    def send(self, size_bytes):\n"
                "        return size_bytes\n"
                "\n"
                "def helper(duration_s):\n"
                "    return duration_s\n"
            ),
            "src/repro/fake_use.py": (
                "from repro.fake_api import Channel, helper\n"
                "\n"
                "def go(rate_bps, wait_s):\n"
                "    chan = Channel(rate_bps)\n"
                "    helper(wait_s)\n"
            ),
        }
        index, errors = build_project(sources)
        assert errors == []
        # Methods keyed module.Class.method; constructor aliased to the
        # bare class key so Channel(...) call sites resolve.
        assert "repro.fake_api.Channel.send" in index.symbols
        assert index.symbols["repro.fake_api.Channel"]["params"] == [
            "capacity_bps"
        ]
        assert index.symbols["repro.fake_api.helper"]["params"] == [
            "duration_s"
        ]
        callees = {
            call["callee"]
            for facts in index.files.values()
            for call in facts["calls"]
        }
        assert callees == {"repro.fake_api.Channel", "repro.fake_api.helper"}
        assert index.defined_in["repro.fake_api.helper"] == (
            "src/repro/fake_api.py"
        )

    def test_nested_defs_stay_out_of_symbol_table(self):
        sources = {
            "src/repro/fake_nest.py": (
                "def outer():\n"
                "    def helper(delay_ms):\n"
                "        return delay_ms\n"
                "    return helper\n"
            ),
        }
        index, _ = build_project(sources)
        assert "repro.fake_nest.outer" in index.symbols
        assert "repro.fake_nest.helper" not in index.symbols

    def test_return_unit_inference(self):
        sources = {
            "src/repro/fake_ret.py": (
                "def window_s():\n"
                "    return 1.5\n"
                "\n"
                "def forwarded():\n"
                "    return window_s()\n"
            ),
        }
        index, _ = build_project(sources)
        # Name suffix wins for window_s; forwarded() follows the chain.
        assert index.return_unit("repro.fake_ret.window_s") == "time:s"
        assert index.return_unit("repro.fake_ret.forwarded") == "time:s"

    def test_syntax_error_reported_not_fatal(self):
        sources = {
            "src/repro/fake_bad.py": "def broken(:\n",
            "src/repro/fake_ok.py": "x = 1\n",
        }
        index, errors = build_project(sources)
        assert [path for path, _exc in errors] == ["src/repro/fake_bad.py"]
        assert "src/repro/fake_ok.py" in index.files


# ----------------------------------------------------------------------
# engine: content-hash cache
# ----------------------------------------------------------------------
class TestFactsCache:
    def test_hit_and_invalidation_on_content_change(self, tmp_path):
        sources = {"src/repro/fake_c.py": "def f(delay_ms):\n    return 1\n"}
        cache = FactsCache(tmp_path)
        build_project(sources, cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        cache.save(sources)

        warm = FactsCache(tmp_path)
        build_project(sources, cache=warm)
        assert (warm.hits, warm.misses) == (1, 0)

        edited = {"src/repro/fake_c.py": "def f(delay_ms):\n    return 2\n"}
        cold = FactsCache(tmp_path)
        build_project(edited, cache=cold)
        assert (cold.hits, cold.misses) == (0, 1)

    def test_save_prunes_to_linted_set(self, tmp_path):
        cache = FactsCache(tmp_path)
        cache.put("a.py", content_hash("x = 1\n"), {"facts": None})
        cache.put("b.py", content_hash("y = 2\n"), {"facts": None})
        cache.save(["a.py"])
        reloaded = FactsCache(tmp_path)
        assert reloaded.get("a.py", content_hash("x = 1\n")) is not None
        assert reloaded.get("b.py", content_hash("y = 2\n")) is None

    def test_corrupt_cache_degrades_to_empty(self, tmp_path):
        target = tmp_path / "lint" / "facts.json"
        target.parent.mkdir(parents=True)
        target.write_text("{not json", encoding="utf-8")
        cache = FactsCache(tmp_path)
        assert cache.get("a.py", "sha") is None

    def test_lint_project_warm_run_skips_analysis(self, tmp_path):
        sources = {
            "src/repro/fake_w.py": "import random\nrandom.random()\n",
        }
        cold = FactsCache(tmp_path)
        findings, summary = lint_project(sources=sources, cache=cold)
        cold.save(sources)
        assert [f.rule_id for f in findings] == ["RPL001"]
        assert summary["cache_misses"] == 1

        warm = FactsCache(tmp_path)
        findings2, summary2 = lint_project(sources=sources, cache=warm)
        assert summary2 == {"files": 1, "cache_hits": 1, "cache_misses": 0}
        assert findings2 == findings  # cached findings round-trip intact


# ----------------------------------------------------------------------
# RPL007 — unit-dimension inference
# ----------------------------------------------------------------------
class TestUnitDimensions:
    API = "def send(timeout_s):\n    return timeout_s\n"

    def test_cross_file_ms_into_s_parameter_fires(self):
        sources = {
            "src/repro/fake_api.py": self.API,
            "src/repro/fake_use.py": (
                "from repro.fake_api import send\n"
                "\n"
                "def go(delay_ms):\n"
                "    send(delay_ms)\n"
            ),
        }
        assert cross_ids(sources) == ["RPL007"]

    def test_matching_unit_is_silent(self):
        sources = {
            "src/repro/fake_api.py": self.API,
            "src/repro/fake_use.py": (
                "from repro.fake_api import send\n"
                "\n"
                "def go(delay_s):\n"
                "    send(delay_s)\n"
            ),
        }
        assert cross_ids(sources) == []

    def test_bits_into_bytes_positional_fires(self):
        sources = {
            "src/repro/fake_api.py": (
                "def enqueue(size_bytes=0):\n    return size_bytes\n"
            ),
            "src/repro/fake_use.py": (
                "from repro.fake_api import enqueue\n"
                "\n"
                "def go(frame_bits):\n"
                "    enqueue(frame_bits)\n"
            ),
        }
        assert cross_ids(sources) == ["RPL007"]

    def test_keyword_same_family_flow_deferred_to_rpl002(self):
        # f(size_bytes=frame_bits) is visible per-file from the keyword
        # name alone; RPL002 owns it and RPL007 must not double-report.
        sources = {
            "src/repro/fake_api.py": (
                "def enqueue(size_bytes=0):\n    return size_bytes\n"
            ),
            "src/repro/fake_use.py": (
                "from repro.fake_api import enqueue\n"
                "\n"
                "def go(frame_bits):\n"
                "    enqueue(size_bytes=frame_bits)\n"
            ),
        }
        assert cross_ids(sources) == []
        findings, _ = lint_project(sources=sources)
        assert [f.rule_id for f in findings] == ["RPL002"]

    def test_dimensionless_return_into_suffixed_slot_fires(self):
        sources = {
            "src/repro/fake_api.py": self.API,
            "src/repro/fake_use.py": (
                "from repro.fake_api import send\n"
                "\n"
                "def frame_budget():\n"
                "    return 33\n"
                "\n"
                "def go():\n"
                "    send(frame_budget())\n"
            ),
        }
        assert cross_ids(sources) == ["RPL007"]

    def test_suffixed_return_assigned_to_other_unit_fires(self):
        sources = {
            "src/repro/fake_api.py": (
                "def window_s():\n    return 1.5\n"
            ),
            "src/repro/fake_use.py": (
                "from repro.fake_api import window_s\n"
                "\n"
                "def go():\n"
                "    limit_ms = window_s()\n"
                "    return limit_ms\n"
            ),
        }
        assert cross_ids(sources) == ["RPL007"]

    def test_arithmetic_mixing_units_fires(self):
        sources = {
            "src/repro/fake_mix.py": (
                "def go(owd_ms, window_s):\n"
                "    return owd_ms + window_s\n"
            ),
        }
        assert cross_ids(sources) == ["RPL007"]

    def test_division_does_not_leak_return_unit(self):
        # bits / seconds is a rate, not bits: the real
        # to_mbps(bytes_to_bits(x) / duration) pattern must stay silent.
        units_src = (REPO_ROOT / "src/repro/util/units.py").read_text(
            encoding="utf-8"
        )
        sources = {
            "src/repro/util/units.py": units_src,
            "src/repro/fake_good.py": (
                "from repro.util.units import bytes_to_bits, to_mbps\n"
                "\n"
                "def goodput(total_bytes, duration):\n"
                "    return to_mbps(bytes_to_bits(total_bytes) / duration)\n"
            ),
        }
        assert cross_ids(sources) == []

    def test_units_helper_misuse_fires(self):
        units_src = (REPO_ROOT / "src/repro/util/units.py").read_text(
            encoding="utf-8"
        )
        sources = {
            "src/repro/util/units.py": units_src,
            "src/repro/fake_bad.py": (
                "from repro.util.units import to_ms\n"
                "\n"
                "def go(owd_ms):\n"
                "    return to_ms(owd_ms)\n"  # to_ms expects seconds
            ),
        }
        assert cross_ids(sources) == ["RPL007"]


# ----------------------------------------------------------------------
# RPL008 — trace-schema contracts
# ----------------------------------------------------------------------
EMITTER = (
    "class Sender:\n"
    "    def __init__(self, obs):\n"
    "        self.obs = obs\n"
    "    def run(self):\n"
    "        if self.obs.enabled:\n"
    "            self.obs.event(\"sender.tick\")\n"
)

CONSUMER = (
    "def scan(records):\n"
    "    return [r for r in records if r.name == \"sender.tick\"]\n"
)


def schema_module(trace: list[str], metric: list[str] | None = None) -> str:
    trace_body = "".join(f'    "{n}",\n' for n in trace)
    metric_body = "".join(f'    "{n}",\n' for n in metric or [])
    return (
        f"TRACE_NAMES = frozenset({{\n{trace_body}}})\n"
        f"METRIC_NAMES = frozenset({{\n{metric_body}}})\n"
    )


class TestTraceSchema:
    def test_registered_emit_and_matching_consumer_silent(self):
        sources = {
            "src/repro/fake_send.py": EMITTER,
            "src/repro/obs/fake_detect.py": CONSUMER,
            "src/repro/obs/schema.py": schema_module(["sender.tick"]),
        }
        assert cross_ids(sources) == []

    def test_unregistered_emit_fires(self):
        sources = {
            "src/repro/fake_send.py": EMITTER,
            "src/repro/obs/schema.py": schema_module(["sender.other"]),
        }
        # Two findings: the unregistered emit and the stale registry
        # entry for the name nothing emits.
        assert cross_ids(sources) == ["RPL008", "RPL008"]

    def test_consumer_of_never_emitted_name_fires(self):
        sources = {
            "src/repro/obs/fake_detect.py": CONSUMER,  # nothing emits
        }
        ids = cross_ids(sources)
        assert ids == ["RPL008"]

    def test_consumer_outside_repro_obs_is_not_checked(self):
        sources = {
            "src/repro/fake_tool.py": CONSUMER,  # ad-hoc analysis code
        }
        assert cross_ids(sources) == []

    def test_detector_constructor_counts_as_emit(self):
        sources = {
            "src/repro/fake_det.py": (
                "from repro.obs.detect import EwmaZScore\n"
                "\n"
                "def build(obs):\n"
                "    return EwmaZScore(obs, \"receiver.owd\", alpha=0.1)\n"
            ),
            "src/repro/obs/fake_use.py": (
                "def scan(records):\n"
                "    return [r for r in records"
                " if r.name == \"receiver.owd\"]\n"
            ),
        }
        assert cross_ids(sources) == []

    def test_seeded_typo_in_live_tree_is_caught(self):
        """Acceptance: cell.congestion -> cell.congested trips RPL008."""
        sources = repo_sources()
        channel = str(REPO_ROOT / "src/repro/cellular/channel.py")
        assert '"cell.congestion"' in sources[channel]
        sources[channel] = sources[channel].replace(
            '"cell.congestion"', '"cell.congested"'
        )
        index, _ = build_project(sources, root=REPO_ROOT)
        findings = [
            f for f in run_cross_rules(index) if f.rule_id == "RPL008"
        ]
        messages = "\n".join(f.message for f in findings)
        assert "cell.congested" in messages  # unregistered emit
        assert "cell.congestion" in messages  # orphaned consumer + stale

    def test_render_trace_schema_round_trips(self):
        sources = {"src/repro/fake_send.py": EMITTER}
        index, _ = build_project(sources)
        rendered = render_trace_schema(index)
        assert '"sender.tick"' in rendered
        sources["src/repro/obs/schema.py"] = rendered
        assert cross_ids(sources) == []


# ----------------------------------------------------------------------
# RPL009 — RNG stream aliasing
# ----------------------------------------------------------------------
class TestRngStreams:
    def test_duplicate_derive_in_one_scope_fires(self):
        sources = {
            "src/repro/fake_rng.py": (
                "def build(streams):\n"
                "    a = streams.derive(\"jitter\")\n"
                "    b = streams.derive(\"jitter\")\n"
                "    return a, b\n"
            ),
        }
        assert cross_ids(sources) == ["RPL009"]

    def test_distinct_labels_silent(self):
        sources = {
            "src/repro/fake_rng.py": (
                "def build(streams):\n"
                "    a = streams.derive(\"jitter\")\n"
                "    b = streams.derive(\"loss\")\n"
                "    return a, b\n"
            ),
        }
        assert cross_ids(sources) == []

    def test_cross_file_label_collision_fires(self):
        sources = {
            "src/repro/fake_callee.py": (
                "def setup(streams):\n"
                "    return streams.derive(\"jitter\")\n"
            ),
            "src/repro/fake_caller.py": (
                "from repro.fake_callee import setup\n"
                "\n"
                "def build(streams):\n"
                "    local = streams.derive(\"jitter\")\n"
                "    other = setup(streams)\n"
                "    return local, other\n"
            ),
        }
        assert cross_ids(sources) == ["RPL009"]

    def test_cross_file_distinct_labels_silent(self):
        sources = {
            "src/repro/fake_callee.py": (
                "def setup(streams):\n"
                "    return streams.derive(\"loss\")\n"
            ),
            "src/repro/fake_caller.py": (
                "from repro.fake_callee import setup\n"
                "\n"
                "def build(streams):\n"
                "    local = streams.derive(\"jitter\")\n"
                "    other = setup(streams)\n"
                "    return local, other\n"
            ),
        }
        assert cross_ids(sources) == []

    def test_module_scope_derive_fires(self):
        sources = {
            "src/repro/fake_mod.py": (
                "from repro.util.rng import RngStreams\n"
                "\n"
                "streams = RngStreams(1)\n"
                "gen = streams.derive(\"ambient\")\n"
            ),
        }
        assert cross_ids(sources) == ["RPL009"]

    def test_generator_shared_between_components_fires(self):
        sources = {
            "src/repro/fake_share.py": (
                "def build(streams, uplink, downlink):\n"
                "    gen = streams.derive(\"noise\")\n"
                "    uplink.attach(gen)\n"
                "    downlink.attach(gen)\n"
            ),
        }
        assert cross_ids(sources) == ["RPL009"]

    def test_generator_used_once_silent(self):
        sources = {
            "src/repro/fake_share.py": (
                "def build(streams, uplink):\n"
                "    gen = streams.derive(\"noise\")\n"
                "    uplink.attach(gen)\n"
            ),
        }
        assert cross_ids(sources) == []


# ----------------------------------------------------------------------
# RPL010 — sim-time/wall-time taint
# ----------------------------------------------------------------------
class TestWallTaint:
    def test_wall_clock_into_schedule_fires(self):
        sources = {
            "src/repro/fake_taint.py": (
                "import time\n"
                "\n"
                "class S:\n"
                "    def __init__(self, loop):\n"
                "        self.loop = loop\n"
                "    def go(self):\n"
                "        t = time.time()\n"
                "        self.loop.call_at(t, self.go)\n"
            ),
        }
        index, _ = build_project(sources)
        ids = [f.rule_id for f in run_cross_rules(index)]
        assert ids == ["RPL010"]

    def test_sim_clock_into_schedule_silent(self):
        sources = {
            "src/repro/fake_taint.py": (
                "class S:\n"
                "    def __init__(self, loop):\n"
                "        self.loop = loop\n"
                "    def go(self):\n"
                "        self.loop.call_at(self.loop.now + 1.0, self.go)\n"
            ),
        }
        assert cross_ids(sources) == []

    def test_wall_derived_return_into_trace_timestamp_fires(self):
        sources = {
            "src/repro/fake_clock.py": (
                "import time\n"
                "\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "src/repro/fake_emit.py": (
                "from repro.fake_clock import stamp\n"
                "\n"
                "def emit(obs):\n"
                "    obs.event(\"x.y\", t=stamp())\n"
            ),
        }
        index, _ = build_project(sources)
        findings = [
            f for f in run_cross_rules(index) if f.rule_id == "RPL010"
        ]
        assert len(findings) == 1
        assert findings[0].path == "src/repro/fake_emit.py"

    def test_wall_taint_survives_arithmetic(self):
        sources = {
            "src/repro/fake_taint.py": (
                "import time\n"
                "\n"
                "def emit(obs, t0):\n"
                "    elapsed = time.perf_counter() - t0\n"
                "    obs.gauge(\"x/elapsed\", elapsed * 1000)\n"
            ),
        }
        index, _ = build_project(sources)
        ids = [f.rule_id for f in run_cross_rules(index)]
        assert ids == ["RPL010"]


# ----------------------------------------------------------------------
# pragmas on cross-module findings
# ----------------------------------------------------------------------
class TestCrossPragmas:
    def test_pragma_on_any_line_of_multiline_call(self):
        source = (
            "import time\n"
            "\n"
            "class S:\n"
            "    def __init__(self, loop):\n"
            "        self.loop = loop\n"
            "    def go(self):\n"
            "        t = time.time()  # repro-lint: ignore[RPL001]\n"
            "        self.loop.call_at(\n"
            "            t,  # repro-lint: ignore[RPL010]  # wall replay\n"
            "            self.go,\n"
            "        )\n"
        )
        findings, _ = lint_project(
            sources={"src/repro/fake_p.py": source}
        )
        assert findings == []

    def test_unpragmad_multiline_call_still_fires(self):
        source = (
            "import time\n"
            "\n"
            "class S:\n"
            "    def __init__(self, loop):\n"
            "        self.loop = loop\n"
            "    def go(self):\n"
            "        t = time.time()  # repro-lint: ignore[RPL001]\n"
            "        self.loop.call_at(\n"
            "            t,\n"
            "            self.go,\n"
            "        )\n"
        )
        findings, _ = lint_project(
            sources={"src/repro/fake_p.py": source}
        )
        assert [f.rule_id for f in findings] == ["RPL010"]

    def test_skip_file_suppresses_findings_but_keeps_facts(self):
        # A skipped emitter must still register its trace names, or the
        # consumer in repro.obs would be misreported as orphaned.
        sources = {
            "src/repro/fake_send.py": (
                "# repro-lint: skip-file\n" + EMITTER
            ),
            "src/repro/obs/fake_detect.py": CONSUMER,
        }
        findings, _ = lint_project(sources=sources)
        assert findings == []


# ----------------------------------------------------------------------
# output formats + baseline
# ----------------------------------------------------------------------
class TestOutput:
    FINDING = Finding(
        path="src/x.py", line=3, col=1, rule_id="RPL007",
        message="mixed units", end_line=5,
    )

    def test_render_json_schema(self):
        payload = json.loads(render_json([self.FINDING], {"files": 1}))
        assert payload["version"] == 1
        assert payload["findings"] == [
            {
                "path": "src/x.py", "line": 3, "col": 1, "end_line": 5,
                "rule": "RPL007", "message": "mixed units",
            }
        ]

    def test_render_sarif_schema(self):
        log = json.loads(
            render_sarif([self.FINDING], [("RPL007", "units", "desc")])
        )
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["rules"][0]["id"] == "RPL007"
        result = run["results"][0]
        assert result["ruleId"] == "RPL007"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert (region["startLine"], region["endLine"]) == (3, 5)

    def test_baseline_round_trip_and_new_findings(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        Baseline.from_findings([self.FINDING]).save(baseline_file)
        loaded = Baseline.load(baseline_file)
        assert loaded.new_findings([self.FINDING]) == []
        other = Finding(
            path="src/y.py", line=1, col=1, rule_id="RPL008",
            message="orphan",
        )
        assert loaded.new_findings([self.FINDING, other]) == [other]

    def test_baseline_multiplicity(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        Baseline.from_findings([self.FINDING]).save(baseline_file)
        # Two identical findings, one baselined: one is new.
        doubled = [self.FINDING, self.FINDING]
        assert Baseline.load(baseline_file).new_findings(doubled) == [
            self.FINDING
        ]

    def test_missing_baseline_is_empty(self, tmp_path):
        loaded = Baseline.load(tmp_path / "absent.json")
        assert loaded.new_findings([self.FINDING]) == [self.FINDING]

    def test_end_line_never_precedes_line(self):
        finding = Finding(
            path="a.py", line=9, col=1, rule_id="RPL007", message="m"
        )
        assert finding.end_line == 9


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
@pytest.fixture()
def fixture_tree(tmp_path, monkeypatch):
    """A tiny self-contained lintable tree, cwd switched into it."""
    monkeypatch.chdir(tmp_path)
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "api.py").write_text(
        "def send(timeout_s):\n    return timeout_s\n", encoding="utf-8"
    )
    (src / "use.py").write_text(
        "from repro.api import send\n"
        "\n"
        "def go(delay_ms):\n"
        "    send(delay_ms)\n",
        encoding="utf-8",
    )
    return tmp_path


class TestCli:
    def test_text_format_and_exit_code(self, fixture_tree, capsys):
        assert run_cli(["src"]) == 1
        out = capsys.readouterr().out
        assert "RPL007" in out and "finding(s)" in out

    def test_json_format(self, fixture_tree, capsys):
        assert run_cli(["src", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in payload["findings"]] == ["RPL007"]

    def test_sarif_format(self, fixture_tree, capsys):
        assert run_cli(["src", "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert [r["ruleId"] for r in log["runs"][0]["results"]] == [
            "RPL007"
        ]

    def test_select_filters_cross_rules(self, fixture_tree, capsys):
        assert run_cli(["src", "--select", "RPL010"]) == 0
        capsys.readouterr()

    def test_baseline_write_then_check(self, fixture_tree, capsys):
        assert run_cli(["src", "--baseline", "write"]) == 0
        assert run_cli(["src", "--baseline", "check"]) == 0
        capsys.readouterr()

    def test_baseline_check_fails_on_new_finding(self, fixture_tree, capsys):
        assert run_cli(["src", "--baseline", "write"]) == 0
        extra = fixture_tree / "src" / "repro" / "extra.py"
        extra.write_text(
            "import random\nrandom.random()\n", encoding="utf-8"
        )
        assert run_cli(["src", "--baseline", "check"]) == 1
        out = capsys.readouterr().out
        assert "RPL001" in out and "RPL007" not in out

    def test_changed_filters_reported_files(
        self, fixture_tree, capsys, monkeypatch
    ):
        import repro.lint.runner as runner_module

        monkeypatch.setattr(
            runner_module,
            "changed_files",
            lambda base="HEAD": {"src/repro/api.py"},
        )
        # The finding is in use.py, which did not change.
        assert run_cli(["src", "--changed"]) == 0
        capsys.readouterr()

    def test_max_seconds_budget_exceeded(self, fixture_tree, capsys):
        assert run_cli(["src", "--select", "RPL010", "--max-seconds", "0"]) == 3
        assert "exceeded" in capsys.readouterr().out

    def test_internal_error_exits_3(self, fixture_tree, capsys, monkeypatch):
        import repro.lint.runner as runner_module

        def boom(**kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(runner_module, "lint_project", boom)
        assert run_cli(["src"]) == 3
        assert "internal error" in capsys.readouterr().out

    def test_write_trace_schema(self, fixture_tree, capsys):
        obs = fixture_tree / "src" / "repro" / "obs"
        obs.mkdir()
        (fixture_tree / "src" / "repro" / "emit.py").write_text(
            EMITTER, encoding="utf-8"
        )
        assert run_cli(["src", "--write-trace-schema"]) == 0
        schema = (obs / "schema.py").read_text(encoding="utf-8")
        assert '"sender.tick"' in schema
        capsys.readouterr()

    def test_cache_reused_across_invocations(self, fixture_tree, capsys):
        run_cli(["src", "--select", "RPL010"])
        capsys.readouterr()
        assert run_cli(["src", "--select", "RPL010", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["cache_misses"] == 0
        assert payload["summary"]["cache_hits"] == 2

    def test_repro_cli_lint_subcommand(self, fixture_tree, capsys):
        from repro.cli import main

        assert main(["lint", "src", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in payload["findings"]] == ["RPL007"]


# ----------------------------------------------------------------------
# runtime schema warnings (Recorder debug mode)
# ----------------------------------------------------------------------
class TestRecorderSchemaWarnings:
    def test_unregistered_name_warns_once(self):
        from repro.obs.recorder import Recorder

        recorder = Recorder(warn_unregistered=True)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            recorder.event("gcc.overuse")  # registered: silent
            recorder.event("gcc.oversue")  # typo: warns
            recorder.event("gcc.oversue")  # repeat: silent
            recorder.count("gcc/overuse_events")  # registered metric
        assert len(caught) == 1
        assert "gcc.oversue" in str(caught[0].message)

    def test_default_mode_never_warns(self):
        from repro.obs.recorder import Recorder

        recorder = Recorder()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            recorder.event("totally.unknown")
        assert caught == []


# ----------------------------------------------------------------------
# live-repo gates and regressions
# ----------------------------------------------------------------------
class TestRepoGates:
    def test_repo_is_clean_whole_program(self):
        """The shipped tree passes RPL001-010 with an empty baseline."""
        findings, _ = lint_project(
            sources=repo_sources(), root=REPO_ROOT
        )
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_checked_in_baseline_is_empty(self):
        payload = json.loads(
            (REPO_ROOT / "lint-baseline.json").read_text(encoding="utf-8")
        )
        assert payload["findings"] == []

    def test_trace_schema_is_fresh(self):
        """src/repro/obs/schema.py matches the current emit sites."""
        index, errors = build_project(repo_sources(), root=REPO_ROOT)
        assert errors == []
        expected = render_trace_schema(index)
        current = (REPO_ROOT / "src/repro/obs/schema.py").read_text(
            encoding="utf-8"
        )
        assert current == expected, (
            "schema registry is stale; run "
            "'python -m repro.lint --write-trace-schema'"
        )

    def test_cc_bench_import_is_side_effect_free(self):
        """Regression (RPL009): importing tools/cc_bench.py must not
        run a simulation or derive RNG streams at module scope."""
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "cc_bench_under_test", REPO_ROOT / "tools" / "cc_bench.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # fast: defs only
        assert callable(module.main)
