"""Tests for repro.obs.diagnose: SLOs, detection, attribution, reports."""

import json
import math

import pytest

from repro.cellular.handover import HetSampler
from repro.core.config import ScenarioConfig
from repro.core.session import run_session
from repro.experiments import ExperimentSettings, run_matrix
from repro.obs import (
    Diagnosis,
    DiagnosisSummary,
    EwmaZScore,
    Recorder,
    Slo,
    SloRegistry,
    TraceEvent,
    TraceSpan,
    Violation,
    WindowedStats,
    attribute,
    causes_from_trace,
    diagnose,
    evaluate_slos,
    samples_from_trace,
    validate_diagnosis,
)
from repro.obs.attribute import Cause
from repro.runner import CampaignRunner


# ----------------------------------------------------------------------
# synthetic trace builders
# ----------------------------------------------------------------------
def config_event(**overrides):
    labels = dict(
        label="synthetic", cc="gcc", seed=1, fps=30.0, duration=30.0,
        target_bps=2e6,
    )
    labels.update(overrides)
    return TraceEvent("session.config", 0.0, labels)


def player_bin(t0, frames=30.0, latency=100.0, gap=33.3, partial=False):
    labels = {
        "t0": float(t0), "frames": float(frames),
        "latency_ms": float(latency), "gap_ms": float(gap),
    }
    if partial:
        labels["partial"] = 1
    return TraceEvent("player.window", float(t0) + 1.0, labels)


def receiver_bin(t0, bytes_=300_000.0, owd=25.0, partial=False):
    labels = {
        "t0": float(t0), "bytes": float(bytes_), "packets": 100.0,
        "owd_max_ms": float(owd),
    }
    if partial:
        labels["partial"] = 1
    return TraceEvent("receiver.window", float(t0) + 1.0, labels)


def steady_trace(n=30, **config_overrides):
    """A healthy session: nominal bins everywhere."""
    trace = [config_event(**config_overrides)]
    for i in range(n):
        trace.append(player_bin(i))
        trace.append(receiver_bin(i))
    return trace


# ----------------------------------------------------------------------
# SLO registry
# ----------------------------------------------------------------------
class TestSlo:
    def test_rejects_bad_op_and_missing_threshold(self):
        with pytest.raises(ValueError):
            Slo(name="x", signal="fps", op="==", threshold=1.0)
        with pytest.raises(ValueError):
            Slo(name="x", signal="fps", op=">=")
        with pytest.raises(ValueError):
            Slo(name="x", signal="fps", op=">=", threshold=1.0, window=0.0)

    def test_threshold_resolves_from_config(self):
        slo = Slo(
            name="bitrate", signal="goodput_bps", op=">=",
            config_key="target_bps", scale=0.8,
        )
        assert slo.resolve_threshold({"target_bps": 2e6}) == pytest.approx(1.6e6)
        assert slo.resolve_threshold({}) is None
        static = Slo(name="s", signal="x", op="<=", threshold=300.0)
        assert static.resolve_threshold({}) == 300.0

    def test_violated_directions(self):
        below = Slo(name="lat", signal="x", op="<=", threshold=300.0)
        assert below.violated(301.0, 300.0)
        assert not below.violated(300.0, 300.0)
        above = Slo(name="fps", signal="x", op=">=", threshold=28.0)
        assert above.violated(27.0, 28.0)
        assert not above.violated(28.0, 28.0)

    def test_registry_defaults_and_duplicates(self):
        registry = SloRegistry.defaults()
        assert {slo.name for slo in registry} == {
            "playback_latency", "stall", "bitrate", "fps",
        }
        with pytest.raises(ValueError):
            registry.add(Slo(name="fps", signal="fps", op=">=", threshold=1.0))
        registry.add(Slo(name="owd", signal="owd_ms", op="<=", threshold=200.0))
        assert len(registry) == 5


# ----------------------------------------------------------------------
# windowed aggregation (online half)
# ----------------------------------------------------------------------
class TestWindowedStats:
    def test_bins_emit_with_empty_fill_and_partial_tail(self):
        recorder = Recorder()
        stats = WindowedStats(
            recorder, "player.window", sums=("frames",), maxes=("latency_ms",)
        )
        stats.add(0.5, (1.0,), (100.0,))
        # Jump over two empty bins: both must still be emitted.
        stats.add(3.2, (1.0,), (50.0,))
        stats.finish(3.7)
        events = [r for r in recorder.trace if r.name == "player.window"]
        assert [event.time for event in events] == [1.0, 2.0, 3.0, 3.7]
        assert events[0].labels["frames"] == 1.0
        assert events[0].labels["latency_ms"] == 100.0
        # Empty bins carry zero sums and omit max signals entirely.
        assert events[1].labels["frames"] == 0.0
        assert "latency_ms" not in events[1].labels
        assert events[2].labels["frames"] == 0.0
        assert events[3].labels["partial"] == 1
        assert events[3].labels["latency_ms"] == 50.0

    def test_finish_without_samples_emits_nothing(self):
        recorder = Recorder()
        stats = WindowedStats(recorder, "x.window", sums=("n",))
        stats.finish(10.0)
        assert recorder.trace == []


class TestEwmaZScore:
    def test_episode_opens_and_closes_as_span(self):
        recorder = Recorder()
        detector = EwmaZScore(recorder, "test.anomaly", warmup=10)
        for i in range(40):
            detector.update(i * 0.1, 10.0 + (0.01 if i % 2 else -0.01))
        detector.update(5.0, 200.0)
        assert detector.in_episode
        detector.update(5.2, 10.0)
        assert not detector.in_episode
        spans = [r for r in recorder.trace if isinstance(r, TraceSpan)]
        assert len(spans) == 1
        assert spans[0].name == "test.anomaly"
        assert spans[0].t0 == pytest.approx(5.0)
        assert spans[0].labels["peak"] == pytest.approx(200.0)

    def test_min_delta_floor_suppresses_micro_jitter(self):
        recorder = Recorder()
        detector = EwmaZScore(
            recorder, "test.anomaly", warmup=10, min_delta=50.0
        )
        for i in range(40):
            detector.update(i * 0.1, 10.0 + (0.01 if i % 2 else -0.01))
        # Statistically huge z, but below the absolute floor.
        detector.update(5.0, 20.0)
        assert not detector.in_episode
        assert recorder.trace == []

    def test_finish_closes_open_episode(self):
        recorder = Recorder()
        detector = EwmaZScore(recorder, "test.anomaly", warmup=5)
        for i in range(10):
            detector.update(i * 0.1, 10.0 + (0.01 if i % 2 else -0.01))
        detector.update(2.0, 500.0)
        assert detector.in_episode
        detector.finish(3.0)
        spans = [r for r in recorder.trace if isinstance(r, TraceSpan)]
        assert len(spans) == 1 and spans[0].t1 == pytest.approx(3.0)

    def test_never_fires_during_warmup(self):
        recorder = Recorder()
        detector = EwmaZScore(recorder, "test.anomaly", warmup=100)
        for i in range(50):
            detector.update(i * 0.1, 1e6 if i % 7 == 0 else 1.0)
        assert recorder.trace == []


# ----------------------------------------------------------------------
# SLO evaluation (offline half)
# ----------------------------------------------------------------------
class TestEvaluateSlos:
    def test_healthy_trace_has_no_violations(self):
        violations, resolved = evaluate_slos(steady_trace(), warmup=5.0)
        assert violations == []
        thresholds = {slo["name"]: slo["threshold"] for slo in resolved}
        assert thresholds["playback_latency"] == 300.0
        assert thresholds["bitrate"] == pytest.approx(1.6e6)
        assert thresholds["fps"] == pytest.approx(28.0)

    def test_latency_spike_detected_with_magnitude(self):
        trace = steady_trace()
        trace[11] = player_bin(5, latency=900.0)  # bins interleave 2/idx
        violations, _ = evaluate_slos(trace, warmup=5.0)
        latency = [v for v in violations if v.slo == "playback_latency"]
        assert len(latency) == 1
        violation = latency[0]
        assert (violation.t0, violation.t1) == (5.0, 6.0)
        assert violation.worst == pytest.approx(900.0)
        assert violation.magnitude == pytest.approx(2.0)
        assert violation.duration == pytest.approx(1.0)

    def test_violation_exactly_at_warmup_boundary_counts(self):
        trace = [config_event()]
        for i in range(20):
            trace.append(player_bin(i, latency=900.0 if i in (4, 5) else 100.0))
        violations, _ = evaluate_slos(trace, warmup=5.0)
        latency = [v for v in violations if v.slo == "playback_latency"]
        # The bin starting exactly at the warmup edge is in; the one
        # before it is out.
        assert len(latency) == 1
        assert (latency[0].t0, latency[0].t1) == (5.0, 6.0)

    def test_back_to_back_violations_coalesce(self):
        trace = [config_event()]
        for i in range(20):
            bad = i in (8, 9, 10)
            trace.append(player_bin(i, latency=700.0 if bad else 100.0))
        violations, _ = evaluate_slos(trace, warmup=5.0)
        latency = [v for v in violations if v.slo == "playback_latency"]
        assert len(latency) == 1
        assert (latency[0].t0, latency[0].t1) == (8.0, 11.0)
        assert latency[0].samples == 3

    def test_separated_violations_stay_distinct(self):
        trace = [config_event()]
        for i in range(20):
            trace.append(player_bin(i, latency=700.0 if i in (8, 12) else 100.0))
        violations, _ = evaluate_slos(trace, warmup=5.0)
        latency = [v for v in violations if v.slo == "playback_latency"]
        assert [(v.t0, v.t1) for v in latency] == [(8.0, 9.0), (12.0, 13.0)]

    def test_rate_slo_uses_mean_and_skips_partial_bins(self):
        trace = [config_event()]
        for i in range(10):
            trace.append(receiver_bin(i, bytes_=100_000.0))  # 0.8 Mbps
        trace.append(receiver_bin(10, bytes_=0.0, partial=True))
        violations, _ = evaluate_slos(trace, warmup=5.0)
        bitrate = [v for v in violations if v.slo == "bitrate"]
        assert len(bitrate) == 1
        # Partial tail bin is excluded, so the violation ends at 10 s.
        assert bitrate[0].t1 == 10.0
        assert bitrate[0].worst == pytest.approx(0.8e6)

    def test_multi_bin_window_aggregates_max(self):
        registry = SloRegistry()
        registry.add(
            Slo(name="lat3", signal="playback_latency_ms", op="<=",
                threshold=300.0, window=3.0)
        )
        trace = [config_event()]
        for i in range(12):
            trace.append(player_bin(i, latency=900.0 if i == 6 else 100.0))
        violations, _ = evaluate_slos(trace, registry, warmup=0.0)
        # Every 3-bin window containing bin 6 violates; they coalesce.
        assert len(violations) == 1
        assert (violations[0].t0, violations[0].t1) == (4.0, 9.0)

    def test_unresolvable_threshold_is_skipped_not_fatal(self):
        trace = [TraceEvent("session.config", 0.0, {"label": "x"})]
        trace += [player_bin(i, frames=1.0) for i in range(10)]
        violations, resolved = evaluate_slos(trace, warmup=0.0)
        assert all(v.slo != "fps" for v in violations)
        fps = next(s for s in resolved if s["name"] == "fps")
        assert fps["threshold"] is None

    def test_samples_from_trace_signals(self):
        samples = samples_from_trace(steady_trace(n=3))
        assert [s.value for s in samples["fps"]] == [30.0, 30.0, 30.0]
        assert [s.value for s in samples["goodput_bps"]] == pytest.approx(
            [2.4e6, 2.4e6, 2.4e6]
        )
        assert [s.value for s in samples["owd_ms"]] == [25.0, 25.0, 25.0]


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------
def latency_violation(t0=10.0, t1=13.0, worst=900.0):
    return Violation(
        slo="playback_latency", component="player",
        signal="playback_latency_ms", op="<=", t0=t0, t1=t1,
        threshold=300.0, worst=worst,
    )


class TestAttribution:
    def test_handover_outranks_cc_rate_cut_for_latency_spike(self):
        trace = [
            TraceSpan(
                "handover.execution", 9.5, 10.2,
                {"source": 3, "target": 5, "het_ms": 700.0},
            ),
            TraceEvent(
                "gcc.rate_decrease", 10.4,
                {"from_bps": 8e6, "to_bps": 4e6, "reason": "delay"},
            ),
        ]
        causes = causes_from_trace(trace)
        assert {c.kind for c in causes} == {"handover", "cc_rate_cut"}
        [attribution] = attribute([latency_violation()], causes)
        assert attribution.primary == "handover"
        kinds = [ranked.cause.kind for ranked in attribution.causes]
        assert kinds == ["handover", "cc_rate_cut"]
        assert attribution.causes[0].score > attribution.causes[1].score

    def test_loss_burst_ranked_first_for_stall(self):
        stall = Violation(
            slo="stall", component="player", signal="interframe_gap_ms",
            op="<=", t0=15.0, t1=16.0, threshold=300.0, worst=800.0,
        )
        trace = [
            TraceSpan("loss.burst", 14.2, 14.6, {"packets": 8, "path": "uplink"}),
            TraceEvent("jitter.gap", 15.1, {"packets": 3, "penalty_ms": 300.0}),
        ]
        [attribution] = attribute([stall], causes_from_trace(trace))
        assert attribution.primary == "loss_burst"

    def test_cause_after_violation_or_too_stale_is_excluded(self):
        causes = [
            Cause(kind="handover", t0=20.0, t1=20.5, magnitude=1.0,
                  detail="later"),
            Cause(kind="handover", t0=2.0, t1=3.0, magnitude=1.0,
                  detail="stale"),
        ]
        [attribution] = attribute(
            [latency_violation(t0=10.0, t1=13.0)], causes, lag_horizon=2.0
        )
        assert attribution.causes == []
        assert attribution.primary == "unexplained"

    def test_lagged_cause_scores_below_overlapping_cause(self):
        overlapping = Cause(kind="loss_burst", t0=10.5, t1=11.0,
                            magnitude=0.5, detail="overlap")
        lagged = Cause(kind="loss_burst", t0=8.0, t1=8.5, magnitude=0.5,
                       detail="lagged")
        [attribution] = attribute([latency_violation()], [lagged, overlapping])
        assert [r.cause.detail for r in attribution.causes] == [
            "overlap", "lagged",
        ]
        assert attribution.causes[1].lag == pytest.approx(1.5)

    def test_ranking_is_deterministic_under_harvest_order(self):
        causes = causes_from_trace([
            TraceSpan("handover.execution", 9.0, 9.8, {"het_ms": 800.0}),
            TraceSpan("channel.capacity_dip", 9.2, 10.5, {"z": 4.0, "peak": 1e6}),
            TraceEvent("gcc.rate_decrease", 9.9, {"from_bps": 8e6, "to_bps": 5e6}),
        ])
        forward = attribute([latency_violation()], causes)
        backward = attribute([latency_violation()], list(reversed(causes)))
        assert ([r.to_dict() for r in forward[0].causes]
                == [r.to_dict() for r in backward[0].causes])

    def test_max_causes_caps_candidate_list(self):
        causes = [
            Cause(kind="cc_rate_cut", t0=10.0 + 0.1 * i, t1=10.0 + 0.1 * i,
                  magnitude=0.5, detail=f"cut {i}")
            for i in range(10)
        ]
        [attribution] = attribute([latency_violation()], causes, max_causes=5)
        assert len(attribution.causes) == 5


# ----------------------------------------------------------------------
# diagnosis + summary
# ----------------------------------------------------------------------
def synthetic_incident_trace():
    """Handover at ~10 s followed by a latency spike in bins 10-12."""
    trace = [config_event()]
    for i in range(25):
        spike = i in (10, 11, 12)
        trace.append(player_bin(i, latency=800.0 if spike else 100.0))
        trace.append(receiver_bin(i))
    trace.append(
        TraceSpan("handover.execution", 9.6, 10.4,
                  {"source": 1, "target": 2, "het_ms": 800.0})
    )
    return trace


class TestDiagnosis:
    def test_diagnose_attributes_injected_handover(self):
        diagnosis = diagnose(synthetic_incident_trace())
        assert diagnosis.label == "synthetic"
        assert diagnosis.duration == 30.0
        latency = [
            a for a in diagnosis.attributions
            if a.violation.slo == "playback_latency"
        ]
        assert len(latency) == 1
        assert latency[0].primary == "handover"

    def test_dict_round_trip_and_schema(self):
        diagnosis = diagnose(synthetic_incident_trace())
        payload = diagnosis.to_dict()
        assert validate_diagnosis(payload) == []
        rebuilt = Diagnosis.from_dict(payload)
        assert rebuilt.to_dict() == payload
        assert json.loads(json.dumps(payload)) == payload

    def test_schema_validation_catches_corruption(self):
        payload = diagnose(synthetic_incident_trace()).to_dict()
        assert validate_diagnosis("nope")
        broken = dict(payload, schema_version=99)
        assert any("schema_version" in e for e in validate_diagnosis(broken))
        broken = json.loads(json.dumps(payload))
        del broken["attributions"][0]["violation"]["threshold"]
        assert validate_diagnosis(broken)

    def test_render_text_and_markdown(self):
        diagnosis = diagnose(synthetic_incident_trace())
        text = diagnosis.render("text")
        assert "playback_latency" in text
        assert "handover" in text
        markdown = diagnosis.render("markdown")
        assert "| SLO | signal |" in markdown
        assert "primary cause" in markdown
        with pytest.raises(ValueError):
            diagnosis.render("html")

    def test_render_healthy_session(self):
        diagnosis = diagnose(steady_trace())
        assert "all SLOs met" in diagnosis.render("text")


class TestDiagnosisSummary:
    def make(self, trace):
        return diagnose(trace).summary()

    def test_counts_and_attribution_fraction(self):
        summary = self.make(synthetic_incident_trace())
        assert summary.sessions == 1
        assert summary.violation_counts["playback_latency"] == 1
        assert summary.attribution_fraction(
            "playback_latency", "handover"
        ) == 1.0
        assert summary.attribution_fraction("playback_latency", "x") == 0.0
        assert summary.attribution_fraction("nope", "handover") == 0.0

    def test_merge_is_order_independent(self):
        a = self.make(synthetic_incident_trace())
        b = self.make(steady_trace())
        c = self.make(synthetic_incident_trace())
        left = DiagnosisSummary()
        for part in (a, b, c):
            left.merge(part)
        right = DiagnosisSummary()
        for part in (c, a, b):
            right.merge(part)
        assert left.to_dict() == right.to_dict()
        assert left.sessions == 3

    def test_dict_round_trip(self):
        summary = self.make(synthetic_incident_trace())
        rebuilt = DiagnosisSummary.from_dict(summary.to_dict())
        assert rebuilt.to_dict() == summary.to_dict()

    def test_render_mentions_primary_cause_shares(self):
        text = self.make(synthetic_incident_trace()).render()
        assert "sessions diagnosed: 1" in text
        assert "handover" in text


# ----------------------------------------------------------------------
# end-to-end: live sessions and campaigns
# ----------------------------------------------------------------------
LONG_HET = HetSampler(
    body_median=1.5, body_sigma=0.01,
    outlier_prob_air=0.0, outlier_prob_ground=0.0,
)


class TestLiveSessionDiagnosis:
    def test_forced_handover_attributed_as_primary_cause(self):
        config = ScenarioConfig(
            cc="gcc", duration=60.0, seed=1, extra={"het": LONG_HET}
        )
        recorder = Recorder()
        result = run_session(config, recorder=recorder)
        payload = result.extra["diagnosis"]
        assert validate_diagnosis(payload) == []
        latency = [
            a for a in payload["attributions"]
            if a["violation"]["slo"] == "playback_latency"
        ]
        assert latency, "1.5 s HETs must break the 300 ms latency SLO"
        assert any(a["primary"] == "handover" for a in latency)

    def test_untraced_run_bit_identical_to_traced(self):
        config = ScenarioConfig(cc="gcc", duration=15.0, seed=5)
        traced = run_session(config, recorder=Recorder())
        plain = run_session(config)
        assert "diagnosis" not in plain.extra
        assert [r.play_time for r in traced.playback] == [
            r.play_time for r in plain.playback
        ]
        assert traced.packets_sent == plain.packets_sent
        assert len(traced.packet_log) == len(plain.packet_log)

    def test_diagnosis_identical_live_and_via_jsonl(self, tmp_path):
        from repro.obs import read_jsonl, write_jsonl

        config = ScenarioConfig(cc="gcc", duration=20.0, seed=2)
        recorder = Recorder()
        result = run_session(config, recorder=recorder)
        path = write_jsonl(tmp_path / "trace.jsonl", recorder)
        trace, registry = read_jsonl(path)
        assert diagnose(trace, registry).to_dict() == result.extra["diagnosis"]


class TestCampaignDiagnosis:
    SETTINGS = ExperimentSettings(duration=12.0, seeds=(1, 2), warmup=2.0)
    CONFIGS = [
        ScenarioConfig(cc="gcc", environment="urban", extra={"het": LONG_HET})
    ]

    def test_runner_merges_diagnosis_order_independently(self):
        with CampaignRunner(1) as serial, CampaignRunner(2) as parallel:
            run_matrix(self.CONFIGS, self.SETTINGS, runner=serial, obs=True)
            run_matrix(self.CONFIGS, self.SETTINGS, runner=parallel, obs=True)
        assert serial.diagnosis.sessions == len(self.SETTINGS.seeds)
        assert serial.diagnosis.to_dict() == parallel.diagnosis.to_dict()

    def test_untraced_campaign_leaves_summary_empty(self):
        with CampaignRunner(1) as runner:
            run_matrix(self.CONFIGS, self.SETTINGS, runner=runner)
        assert runner.diagnosis.sessions == 0
        assert runner.diagnosis.to_dict()["violation_counts"] == {}
