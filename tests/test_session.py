"""Integration tests: full measurement sessions end to end."""

import numpy as np
import pytest

from repro import CcAlgorithm, Environment, Platform, ScenarioConfig, run_session
from repro.core.config import STATIC_BITRATE
from repro.core.session import build_controller
from repro.cc import GccController, ScreamController, StaticBitrateController
from repro.metrics import VideoSummary, network_summary


class TestScenarioConfig:
    def test_string_coercion(self):
        config = ScenarioConfig(environment="rural", platform="ground", cc="gcc")
        assert config.environment is Environment.RURAL
        assert config.platform is Platform.GROUND
        assert config.cc is CcAlgorithm.GCC

    def test_static_bitrate_defaults_per_environment(self):
        urban = ScenarioConfig(environment="urban")
        rural = ScenarioConfig(environment="rural")
        assert urban.effective_static_bitrate == STATIC_BITRATE[Environment.URBAN]
        assert rural.effective_static_bitrate == STATIC_BITRATE[Environment.RURAL]

    def test_explicit_static_bitrate_wins(self):
        config = ScenarioConfig(environment="urban", static_bitrate=12e6)
        assert config.effective_static_bitrate == 12e6

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(operator="P9")

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(duration=0)

    def test_with_overrides(self):
        config = ScenarioConfig(seed=1)
        other = config.with_overrides(seed=9, duration=10.0)
        assert other.seed == 9 and other.duration == 10.0
        assert config.seed == 1

    def test_label_contains_dimensions(self):
        label = ScenarioConfig(cc="gcc", environment="rural", seed=4).label()
        assert "gcc" in label and "rural" in label and "s4" in label


class TestBuildController:
    def test_static(self):
        config = ScenarioConfig(cc="static", environment="rural")
        controller = build_controller(config)
        assert isinstance(controller, StaticBitrateController)
        assert controller.target_bitrate(0.0) == 8e6

    def test_gcc(self):
        assert isinstance(build_controller(ScenarioConfig(cc="gcc")), GccController)

    def test_scream(self):
        assert isinstance(
            build_controller(ScenarioConfig(cc="scream")), ScreamController
        )


@pytest.fixture(scope="module")
def static_result():
    return run_session(
        ScenarioConfig(cc="static", environment="urban", duration=40.0, seed=6)
    )


@pytest.fixture(scope="module")
def gcc_result():
    return run_session(
        ScenarioConfig(cc="gcc", environment="urban", duration=40.0, seed=6)
    )


@pytest.fixture(scope="module")
def scream_result():
    return run_session(
        ScenarioConfig(cc="scream", environment="urban", duration=40.0, seed=6)
    )


class TestSessionEndToEnd:
    def test_packets_flow(self, static_result):
        assert static_result.packets_sent > 1000
        assert len(static_result.packet_log) > 1000
        assert static_result.packet_loss_rate < 0.05

    def test_video_plays(self, static_result):
        assert len(static_result.playback) > 500
        summary = VideoSummary.from_result(static_result, warmup=5.0)
        assert summary.mean_fps > 20.0
        assert summary.median_ssim > 0.8

    def test_delays_physically_plausible(self, static_result):
        for entry in static_result.packet_log:
            assert entry.received_at > entry.sent_at
            assert entry.received_at - entry.sent_at >= static_result.config.base_owd

    def test_playback_latency_bounded_below_by_pipeline(self, static_result):
        # encode + network + jitter buffer: nothing can play faster.
        floor = static_result.config.base_owd + static_result.config.jitter_buffer_latency
        for record in static_result.playback[5:]:
            assert record.playback_latency > floor * 0.9

    def test_frame_ids_played_in_order(self, static_result):
        ids = [r.frame_id for r in static_result.playback]
        assert ids == sorted(ids)

    def test_network_summary_keys(self, static_result):
        summary = network_summary(static_result)
        assert set(summary) >= {
            "ho_per_s", "owd_median_ms", "goodput_mbps", "loss_rate",
        }

    def test_gcc_adapts_bitrate(self, gcc_result):
        targets = [e.target_bitrate for e in gcc_result.cc_log]
        assert targets, "GCC produced no log entries"
        assert max(targets) > 1.5 * targets[0]  # ramped up from start

    def test_gcc_goodput_below_static(self, static_result, gcc_result):
        static_bytes = sum(e.size_bytes for e in static_result.packet_log)
        gcc_bytes = sum(e.size_bytes for e in gcc_result.packet_log)
        assert gcc_bytes < static_bytes

    def test_scream_keeps_bytes_in_flight_bounded(self, scream_result):
        for entry in scream_result.cc_log:
            assert entry.extra["bytes_in_flight"] <= entry.extra["cwnd"] + 1500

    def test_deterministic_for_seed(self):
        config = ScenarioConfig(cc="static", environment="rural", duration=15.0, seed=3)
        a = run_session(config)
        b = run_session(config)
        assert a.packets_sent == b.packets_sent
        assert len(a.packet_log) == len(b.packet_log)
        assert [r.play_time for r in a.playback] == [r.play_time for r in b.playback]
        assert len(a.handovers) == len(b.handovers)

    def test_different_seeds_differ(self):
        a = run_session(ScenarioConfig(duration=15.0, seed=1))
        b = run_session(ScenarioConfig(duration=15.0, seed=2))
        assert [s.rsrp_dbm for s in a.capacity_samples[:50]] != [
            s.rsrp_dbm for s in b.capacity_samples[:50]
        ]

    def test_ground_platform_runs(self):
        result = run_session(
            ScenarioConfig(cc="static", environment="urban", platform="ground",
                           duration=20.0, seed=5)
        )
        assert all(s.altitude < 5.0 for s in result.capacity_samples)
        assert len(result.playback) > 300

    def test_p2_operator_runs(self):
        result = run_session(
            ScenarioConfig(cc="static", environment="rural", operator="P2",
                           duration=20.0, seed=5)
        )
        assert result.packets_sent > 0

    def test_extra_counters_present(self, scream_result, gcc_result):
        assert "false_loss_candidates" in scream_result.extra
        assert "overuse_events" in gcc_result.extra
        assert "ping_pong_handovers" in scream_result.extra

    def test_rssi_log_coarse(self, static_result):
        times = [r.time for r in static_result.rssi_log]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert min(gaps) >= 0.99  # 1 Hz, as the paper's dongles report


class TestBufferWiring:
    """The downlink path must honour its own (shallow) buffer config."""

    def test_downlink_buffer_field_defaults_shallow(self):
        config = ScenarioConfig()
        assert config.downlink_buffer_bytes < config.uplink_buffer_bytes

    def test_session_wires_separate_buffer_sizes(self, monkeypatch):
        import repro.core.session as session_module
        from repro.net.path import NetworkPath

        captured = []

        class RecordingPath(NetworkPath):
            def __init__(self, *args, **kwargs):
                captured.append(kwargs.get("buffer_bytes"))
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(session_module, "NetworkPath", RecordingPath)
        config = ScenarioConfig(
            cc="static",
            duration=5.0,
            seed=2,
            uplink_buffer_bytes=4_000_000,
            downlink_buffer_bytes=1_000_000,
        )
        run_session(config)
        assert captured == [4_000_000, 1_000_000]
