"""Tests for the experiment harness (quick-scale smoke + structure)."""

import pytest

from repro.core.config import ScenarioConfig
from repro.experiments import (
    ExperimentSettings,
    fig8_timeseries,
    run_channel_probe,
    run_matrix,
    run_ping_probe,
)

QUICK = ExperimentSettings(duration=30.0, seeds=(1,), warmup=10.0)


class TestExperimentSettings:
    def test_defaults_valid(self):
        settings = ExperimentSettings()
        assert settings.duration > settings.warmup

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSettings(duration=-1)
        with pytest.raises(ValueError):
            ExperimentSettings(seeds=())
        with pytest.raises(ValueError):
            ExperimentSettings(duration=10.0, warmup=20.0)

    def test_presets(self):
        assert ExperimentSettings.quick().duration < ExperimentSettings.paper_scale().duration


class TestRunMatrix:
    def test_groups_by_series_label(self):
        configs = [
            ScenarioConfig(cc="static", environment="urban"),
            ScenarioConfig(cc="static", environment="rural"),
        ]
        settings = ExperimentSettings(duration=15.0, seeds=(1, 2), warmup=5.0)
        grouped = run_matrix(configs, settings)
        assert len(grouped) == 2
        for results in grouped.values():
            assert len(results) == 2  # one per seed
            assert {r.config.seed for r in results} == {1, 2}

    def test_results_carry_duration(self):
        grouped = run_matrix([ScenarioConfig(cc="static")], QUICK)
        result = next(iter(grouped.values()))[0]
        assert result.duration == QUICK.duration


class TestRunnerOwnership:
    def test_run_matrix_closes_internal_runner(self):
        """Regression: run_matrix used to leak the worker pool it
        created internally (the pool is persistent since PR 3)."""
        import multiprocessing

        run_matrix(
            [ScenarioConfig(cc="static")],
            ExperimentSettings(duration=12.0, seeds=(1, 2), warmup=2.0),
            workers=2,
        )
        for child in multiprocessing.active_children():
            child.join(timeout=10.0)
        assert multiprocessing.active_children() == []

    def test_caller_supplied_runner_stays_open(self):
        from repro.runner import CampaignRunner

        with CampaignRunner(workers=1) as runner:
            run_matrix([ScenarioConfig(cc="static")], QUICK, runner=runner)
            # Reusable across campaigns: a second call must still work.
            grouped = run_matrix(
                [ScenarioConfig(cc="static")], QUICK, runner=runner
            )
        assert len(grouped) == 1


class TestChannelProbe:
    def test_probe_collects_samples(self):
        probe = run_channel_probe(
            ScenarioConfig(environment="urban", platform="air"), QUICK
        )
        assert len(probe.uplink_samples) > 200
        assert probe.duration_total == QUICK.duration
        assert probe.ho_frequency >= 0.0

    def test_ho_frequency_zero_duration(self):
        """Regression: an empty probe divided by zero total duration."""
        from repro.experiments import ChannelProbeResult

        empty = ChannelProbeResult(
            label="static-urban-air-P1",
            handovers=[],
            duration_total=0.0,
            uplink_samples=[],
            altitudes=[],
            cells_seen=0,
            ping_pong=0,
        )
        assert empty.ho_frequency == 0.0

    def test_probe_label(self):
        probe = run_channel_probe(
            ScenarioConfig(environment="rural", platform="ground", cc="static"),
            QUICK,
        )
        assert probe.label == "static-rural-ground-P1"


class TestPingProbe:
    def test_pings_echo(self):
        samples = run_ping_probe(
            ScenarioConfig(environment="urban", platform="air"), QUICK, rate_hz=10.0
        )
        assert len(samples) > 200
        for sample in samples[:50]:
            assert sample.rtt > 2 * 0.9 * 0.018  # two base OWDs minimum
            assert sample.altitude >= 0.0

    def test_rtt_reflects_round_trip(self):
        samples = run_ping_probe(
            ScenarioConfig(environment="urban", platform="ground"), QUICK,
            rate_hz=5.0,
        )
        import numpy as np
        median = np.median([s.rtt for s in samples])
        # Roughly twice the configured base OWD plus serialization.
        assert 0.03 < median < 0.2


class TestFig8:
    def test_series_extracted(self):
        settings = ExperimentSettings(duration=60.0, seeds=(3,), warmup=10.0)
        result = fig8_timeseries(settings)
        assert len(result.network_latency) > 20
        assert len(result.playback_latency) > 100
        text = result.render()
        assert "network latency" in text
