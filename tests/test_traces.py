"""Tests for the dataset schema, export/import and trace replay."""

import pytest

from repro.core.config import ScenarioConfig
from repro.core.session import run_session
from repro.net.packet import Datagram
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop
from repro.traces import (
    ChannelRecord,
    HandoverRecord,
    PacketRecord,
    TraceReplayChannel,
    export_session,
    list_runs,
    load_run,
    parse_csv,
    read_csv,
    write_csv,
)


class TestSchema:
    def test_packet_record_owd(self):
        record = PacketRecord(
            sequence=1, sent_at=1.0, received_at=1.05, size_bytes=1200, frame_id=0
        )
        assert record.one_way_delay == pytest.approx(0.05)

    def test_csv_roundtrip(self, tmp_path):
        records = [
            PacketRecord(
                sequence=i, sent_at=i * 0.1, received_at=i * 0.1 + 0.05,
                size_bytes=1200, frame_id=i // 3,
            )
            for i in range(10)
        ]
        path = tmp_path / "packets.csv"
        assert write_csv(path, records) == 10
        loaded = read_csv(path, PacketRecord)
        assert loaded == records

    def test_empty_write_and_read(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_csv(path, []) == 0
        assert read_csv(path, PacketRecord) == []

    def test_parse_rejects_unknown_column(self):
        with pytest.raises(ValueError):
            parse_csv("bogus\n1\n", PacketRecord)

    def test_handover_record_roundtrip(self, tmp_path):
        records = [
            HandoverRecord(
                time=12.5, source_cell=3, target_cell=7,
                execution_time=0.031, altitude=80.0,
            )
        ]
        path = tmp_path / "handovers.csv"
        write_csv(path, records)
        assert read_csv(path, HandoverRecord) == records


@pytest.fixture(scope="module")
def short_session():
    return run_session(
        ScenarioConfig(cc="static", environment="urban", duration=20.0, seed=2)
    )


class TestDataset:
    def test_export_creates_all_files(self, short_session, tmp_path):
        run_dir = export_session(short_session, tmp_path / "run1")
        for name in ("packets.csv", "handovers.csv", "channel.csv", "meta.json"):
            assert (run_dir / name).exists()

    def test_roundtrip_preserves_counts(self, short_session, tmp_path):
        run_dir = export_session(short_session, tmp_path / "run1")
        run = load_run(run_dir)
        assert len(run.packets) == len(short_session.packet_log)
        assert len(run.handovers) == len(short_session.handovers)
        assert len(run.channel) == len(short_session.capacity_samples)
        assert run.meta["cc"] == "static"
        assert run.duration == short_session.duration

    def test_list_runs_finds_exported(self, short_session, tmp_path):
        export_session(short_session, tmp_path / "a")
        export_session(short_session, tmp_path / "b")
        assert len(list_runs(tmp_path)) == 2

    def test_list_runs_empty_for_missing_root(self, tmp_path):
        assert list_runs(tmp_path / "nothing") == []


class TestTraceReplay:
    def make_trace(self, rate=10e6, duration=5.0):
        return [
            ChannelRecord(
                time=i * 0.1, uplink_bps=rate, downlink_bps=rate * 5,
                serving_cell=0, rsrp_dbm=-70.0, sinr_db=10.0, altitude=40.0,
            )
            for i in range(int(duration / 0.1))
        ]

    def test_rate_follows_trace(self):
        loop = EventLoop()
        trace = self.make_trace()
        trace[20] = ChannelRecord(
            time=2.0, uplink_bps=1e6, downlink_bps=5e6,
            serving_cell=0, rsrp_dbm=-90.0, sinr_db=0.0, altitude=40.0,
        )
        replay = TraceReplayChannel(loop, trace)
        assert replay.uplink_rate(0.05) == 10e6
        assert replay.uplink_rate(2.05) == 1e6
        assert replay.uplink_rate(2.15) == 10e6

    def test_handover_outage_replayed(self):
        loop = EventLoop()
        replay = TraceReplayChannel(
            loop,
            self.make_trace(),
            [HandoverRecord(time=1.0, source_cell=0, target_cell=1,
                            execution_time=0.5, altitude=40.0)],
        )
        received = []
        path = NetworkPath(
            loop, replay.uplink_rate, received.append,
            base_delay=0.0, jitter_std=0.0,
        )
        replay.attach_path(path)
        replay.start()
        loop.call_at(1.1, lambda: path.send(Datagram(size_bytes=1000, payload=None)))
        loop.run()
        # Sent during the outage: delivered only after it ends at 1.5 s.
        assert received[0].received_at >= 1.5

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayChannel(EventLoop(), [])

    def test_non_monotone_trace_rejected(self):
        trace = self.make_trace()
        trace[1] = trace[0]
        with pytest.raises(ValueError):
            TraceReplayChannel(EventLoop(), trace)

    def test_replay_of_recorded_session(self, short_session):
        """End to end: a recorded channel drives a replay path."""
        loop = EventLoop()
        trace = [
            ChannelRecord(
                time=s.time, uplink_bps=s.uplink_bps, downlink_bps=s.downlink_bps,
                serving_cell=s.serving_cell, rsrp_dbm=s.rsrp_dbm,
                sinr_db=s.sinr_db, altitude=s.altitude,
            )
            for s in short_session.capacity_samples
        ]
        replay = TraceReplayChannel(loop, trace)
        received = []
        path = NetworkPath(
            loop, replay.uplink_rate, received.append,
            base_delay=0.02, jitter_std=0.0,
        )
        replay.attach_path(path)
        replay.start()
        for i in range(100):
            loop.call_at(i * 0.1, lambda: path.send(Datagram(1200, None)))
        loop.run_until(15.0)
        assert len(received) == 100
