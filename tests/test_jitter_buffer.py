"""Tests for the GStreamer-like jitter buffer."""

import pytest

from repro.net.simulator import EventLoop
from repro.rtp.jitter_buffer import JitterBuffer
from repro.rtp.packets import RtpPacket, timestamp_for


def make_packet(seq, media_time):
    return RtpPacket(
        ssrc=1,
        sequence=seq % (1 << 16),
        timestamp=timestamp_for(media_time),
        payload_size=1200,
    )


class TestJitterBuffer:
    def test_packet_released_after_latency(self):
        loop = EventLoop()
        released = []
        buffer = JitterBuffer(loop, lambda p, t: released.append((p.sequence, t)))
        loop.call_at(0.05, lambda: buffer.push(make_packet(0, 0.0), 0.05))
        loop.run()
        # offset = 0.05; deadline = 0.05 + 0 + 0.150
        assert released == [(0, pytest.approx(0.2))]

    def test_jitter_equalized(self):
        """Packets with variable network delay play out at a constant
        media pace."""
        loop = EventLoop()
        released = []
        buffer = JitterBuffer(
            loop, lambda p, t: released.append(t), latency=0.1
        )
        # Variable delays chosen so arrival order stays FIFO.
        delays = [0.04, 0.07, 0.05, 0.06, 0.041]
        for i, delay in enumerate(delays):
            media = i * (1.0 / 30)
            loop.call_at(
                media + delay,
                lambda p=make_packet(i, media), a=media + delay: buffer.push(p, a),
            )
        loop.run()
        gaps = [b - a for a, b in zip(released, released[1:])]
        # The 90 kHz RTP clock quantizes media times to ~11 us.
        for gap in gaps:
            assert gap == pytest.approx(1.0 / 30, abs=1e-4)

    def test_late_packet_released_immediately_by_default(self):
        loop = EventLoop()
        released = []
        buffer = JitterBuffer(loop, lambda p, t: released.append(t), latency=0.05)
        loop.call_at(0.01, lambda: buffer.push(make_packet(0, 0.0), 0.01))
        # Second packet arrives way beyond its deadline.
        loop.call_at(0.5, lambda: buffer.push(make_packet(1, 1.0 / 30), 0.5))
        loop.run()
        assert released[1] == pytest.approx(0.5)
        assert buffer.dropped_late_packets == 0

    def test_drop_on_latency_discards_late_packets(self):
        loop = EventLoop()
        released = []
        buffer = JitterBuffer(
            loop,
            lambda p, t: released.append(p.sequence),
            latency=0.05,
            drop_on_latency=True,
        )
        loop.call_at(0.01, lambda: buffer.push(make_packet(0, 0.0), 0.01))
        loop.call_at(0.5, lambda: buffer.push(make_packet(1, 1.0 / 30), 0.5))
        loop.run()
        assert released == [0]
        assert buffer.dropped_late_packets == 1

    def test_offset_tracks_minimum_skew(self):
        """A slow first packet must not inflate all later deadlines."""
        loop = EventLoop()
        released = []
        buffer = JitterBuffer(loop, lambda p, t: released.append(t), latency=0.1)
        # First packet sees 300 ms delay; a much later packet sees
        # only 40 ms (the queue drained).
        loop.call_at(0.3, lambda: buffer.push(make_packet(0, 0.0), 0.3))
        media = 10 * (1.0 / 30)
        loop.call_at(
            media + 0.04, lambda: buffer.push(make_packet(1, media), media + 0.04)
        )
        loop.run()
        # Second packet's deadline derives from its own (smaller)
        # skew, not the first packet's inflated one.
        assert released[1] == pytest.approx(media + 0.04 + 0.1, abs=1e-4)

    def test_gap_penalty_applied_beyond_threshold(self):
        loop = EventLoop()
        released = []
        buffer = JitterBuffer(
            loop,
            lambda p, t: released.append((p.sequence, t)),
            latency=0.1,
            gap_penalty_threshold=10,
            gap_wait_per_packet=0.002,
        )
        loop.call_at(0.04, lambda: buffer.push(make_packet(0, 0.0), 0.04))
        # 200-packet hole (a SCReAM queue discard).
        media = 10 * (1.0 / 30)
        loop.call_at(
            media + 0.04,
            lambda: buffer.push(make_packet(201, media), media + 0.04),
        )
        loop.run()
        base_deadline = media + 0.04 + 0.1
        penalty = (201 - 1 - 10) * 0.002
        assert released[1][1] == pytest.approx(base_deadline + penalty, abs=1e-3)
        assert buffer.gap_events == 1

    def test_small_gaps_do_not_accrue_penalty(self):
        loop = EventLoop()
        released = []
        buffer = JitterBuffer(
            loop,
            lambda p, t: released.append(t),
            latency=0.1,
            gap_penalty_threshold=100,
        )
        loop.call_at(0.04, lambda: buffer.push(make_packet(0, 0.0), 0.04))
        media = 1.0 / 30
        loop.call_at(
            media + 0.04, lambda: buffer.push(make_packet(4, media), media + 0.04)
        )
        loop.run()
        assert buffer.gap_events == 1
        assert released[1] == pytest.approx(media + 0.04 + 0.1)

    def test_release_order_is_fifo_despite_penalty_decay(self):
        loop = EventLoop()
        released = []
        buffer = JitterBuffer(
            loop,
            lambda p, t: released.append(p.sequence),
            latency=0.1,
            gap_penalty_threshold=0,
            gap_wait_per_packet=0.01,
            gap_penalty_tau=0.5,
        )
        # A big hole, then a steady stream while the penalty decays.
        loop.call_at(0.04, lambda: buffer.push(make_packet(0, 0.0), 0.04))
        for i in range(1, 20):
            media = i * (1.0 / 30)
            seq = 100 + i  # 100-packet hole before packet 101
            loop.call_at(
                media + 0.04,
                lambda p=make_packet(seq, media), a=media + 0.04: buffer.push(p, a),
            )
        loop.run()
        assert released == sorted(released)

    def test_flush_suppresses_pending_releases(self):
        loop = EventLoop()
        released = []
        buffer = JitterBuffer(loop, lambda p, t: released.append(p))
        loop.call_at(0.01, lambda: buffer.push(make_packet(0, 0.0), 0.01))
        loop.call_at(0.02, buffer.flush)
        loop.run()
        assert released == []

    def test_flush_cancels_scheduled_events(self):
        """Flush must cancel the release events, not just mute them:
        teardown leaves the loop clean and ``pending()`` meaningful."""
        loop = EventLoop()
        buffer = JitterBuffer(loop, lambda p, t: None, latency=0.2)
        fired = []
        loop.call_at(0.01, lambda: buffer.push(make_packet(0, 0.0), 0.01))
        loop.call_at(0.02, lambda: buffer.push(make_packet(1, 1.0 / 30), 0.02))
        loop.call_at(0.03, lambda: fired.append(loop.pending()))
        loop.call_at(0.04, buffer.flush)
        loop.call_at(0.05, lambda: fired.append(loop.pending()))
        loop.run()
        # Two releases pending before the flush (plus the two probe
        # events themselves); none after.
        assert fired[0] >= 2
        assert fired[1] == 0

    def test_release_removes_its_pending_handle(self):
        loop = EventLoop()
        released = []
        buffer = JitterBuffer(loop, lambda p, t: released.append(p.sequence))
        loop.call_at(0.01, lambda: buffer.push(make_packet(0, 0.0), 0.01))
        loop.run()
        assert released == [0]
        assert len(buffer._waiting) == 0
        assert buffer._head_handle is None
        assert loop.pending() == 0

    def test_backward_wrap_not_pushed_a_span_forward(self):
        """A reordered pre-wrap packet arriving just after the wrap
        must unwrap slightly backward, not a full span forward."""
        from repro.rtp.packets import TS_MOD, VIDEO_CLOCK_RATE

        loop = EventLoop()
        released = []
        buffer = JitterBuffer(
            loop, lambda p, t: released.append((p.sequence, t)), latency=0.1
        )
        # First packet is post-wrap (small timestamp); the reordered
        # pre-wrap packet has a timestamp just below TS_MOD.
        post = RtpPacket(ssrc=1, sequence=1, timestamp=100, payload_size=1200)
        pre = RtpPacket(
            ssrc=1, sequence=0, timestamp=TS_MOD - 300, payload_size=1200
        )
        loop.call_at(0.01, lambda: buffer.push(post, 0.01))
        loop.call_at(0.02, lambda: buffer.push(pre, 0.02))
        loop.run_until(5.0)
        span = TS_MOD / VIDEO_CLOCK_RATE
        assert len(released) == 2
        # Both packets play out promptly — nowhere near a span (~13 h)
        # in the future, and FIFO order is preserved.
        assert all(t < 1.0 for _, t in released)
        assert released[0][0] == 1 and released[1][0] == 0
        assert buffer._last_media_time < span / 2

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            JitterBuffer(EventLoop(), lambda p, t: None, latency=-0.1)
