"""Stream-stability regression tests for :class:`repro.util.rng.RngStreams`.

The scenario-to-stream mapping is part of the repo's reproducibility
contract: every published figure depends on ``(seed, label)`` pairs
resolving to the exact same numpy streams forever. These tests pin
actual draw values, so any change to the derivation scheme (CRC of the
label, SeedSequence spawning, the child-seed mixing constant) fails
loudly instead of silently shifting every result in the repo.
"""

import numpy as np
import pytest

from repro.util.rng import BatchedNormal, BatchedUniform, RngStreams

#: (seed, label) -> first three uniform draws of the derived stream.
PINNED_DERIVE = {
    (0, "channel"): (0.7647666104996249, 0.013273770296068022, 0.9208384125157817),
    (0, "jitter-up"): (0.06466052777215936, 0.021685895796428656, 0.45410432090830277),
    (0, "encoder"): (0.7770500150039504, 0.222669365513266, 0.8740922013036625),
    (7, "channel"): (0.6514815812461763, 0.529094368974359, 0.9348283010001035),
    (7, "jitter-up"): (0.37777087639865703, 0.8245864783906182, 0.9429400868716354),
    (7, "encoder"): (0.5297658026245564, 0.8152848580913293, 0.362345562193486),
    (21, "channel"): (0.21645661798261007, 0.9715596538784609, 0.9274424283187428),
    (21, "jitter-up"): (0.8947382366622467, 0.586132133698016, 0.7985841616101258),
    (21, "encoder"): (0.33372986633267354, 0.46571923216808975, 0.25476584961529736),
}

#: (seed, label) -> first integers(0, 1_000_000) draw after the three uniforms.
PINNED_INTEGER = {
    (0, "channel"): 511280,
    (0, "jitter-up"): 21780,
    (0, "encoder"): 270062,
    (7, "channel"): 179366,
    (7, "jitter-up"): 398586,
    (7, "encoder"): 653203,
    (21, "channel"): 877016,
    (21, "jitter-up"): 183735,
    (21, "encoder"): 890150,
}

#: (seed, label) -> (child factory seed, first uniform of child.derive("inner")).
PINNED_CHILD = {
    (0, "channel"): (2734263879, 0.929614234543116),
    (7, "handover"): (2156179625, 0.688075715161052),
    (21, "channel"): (2755263942, 0.9336270333553359),
}


@pytest.mark.parametrize("seed,label", sorted(PINNED_DERIVE))
def test_derive_streams_are_pinned(seed, label):
    rng = RngStreams(seed).derive(label)
    draws = tuple(float(x) for x in rng.random(3))
    assert draws == PINNED_DERIVE[(seed, label)]
    assert int(rng.integers(0, 1_000_000)) == PINNED_INTEGER[(seed, label)]


@pytest.mark.parametrize("seed,label", sorted(PINNED_CHILD))
def test_child_factories_are_pinned(seed, label):
    expected_seed, expected_draw = PINNED_CHILD[(seed, label)]
    child = RngStreams(seed).child(label)
    assert child.seed == expected_seed
    assert float(child.derive("inner").random()) == expected_draw


def test_derive_is_stateless_and_label_sensitive():
    streams = RngStreams(7)
    first = streams.derive("channel").random(4)
    again = streams.derive("channel").random(4)
    np.testing.assert_array_equal(first, again)
    other = streams.derive("channel2").random(4)
    assert not np.array_equal(first, other)


def test_child_namespaces_do_not_collide_with_parent():
    streams = RngStreams(7)
    parent_draw = float(streams.derive("inner").random())
    child_draw = float(streams.child("channel").derive("inner").random())
    assert parent_draw != child_draw


class TestBatchedDraws:
    """Bit-identity contract of the block-refill wrappers.

    The simulation hot path replaced scalar ``rng.normal`` /
    ``rng.uniform`` / ``rng.random`` calls with these wrappers; every
    published figure relies on the replacement being invisible to the
    draw stream. Each test compares a wrapper against plain scalar
    calls on an identically-derived stream, with ``==`` (not approx).
    """

    def test_batched_normal_matches_scalar_calls(self):
        batched = BatchedNormal(RngStreams(3).derive("x"))
        scalar = RngStreams(3).derive("x")
        for _ in range(1500):  # crosses two refill boundaries at block=512
            assert batched.normal(2.5, 0.75) == float(scalar.normal(2.5, 0.75))

    def test_batched_normal_varying_params_match(self):
        """loc/scale can change per call without disturbing the stream."""
        batched = BatchedNormal(RngStreams(9).derive("y"))
        scalar = RngStreams(9).derive("y")
        params = [(0.0, 1.0), (-0.5, 0.02), (100.0, 7.0), (0.0, 0.0)]
        for k in range(600):
            loc, scale = params[k % len(params)]
            assert batched.normal(loc, scale) == float(scalar.normal(loc, scale))

    def test_batched_uniform_matches_scalar_calls(self):
        batched = BatchedUniform(RngStreams(5).derive("z"))
        scalar = RngStreams(5).derive("z")
        for _ in range(1500):
            assert batched.random() == float(scalar.random())

    def test_batched_uniform_uniform_matches_scalar_calls(self):
        batched = BatchedUniform(RngStreams(11).derive("w"))
        scalar = RngStreams(11).derive("w")
        for _ in range(600):
            assert batched.uniform(-3.0, 4.5) == float(scalar.uniform(-3.0, 4.5))

    def test_mixed_random_and_uniform_share_one_buffer(self):
        batched = BatchedUniform(RngStreams(13).derive("m"))
        scalar = RngStreams(13).derive("m")
        for k in range(600):
            if k % 2:
                assert batched.random() == float(scalar.random())
            else:
                assert batched.uniform(0.0, 10.0) == float(scalar.uniform(0.0, 10.0))

    def test_block_of_one_still_matches(self):
        batched = BatchedNormal(RngStreams(1).derive("tiny"), block=1)
        scalar = RngStreams(1).derive("tiny")
        for _ in range(20):
            assert batched.normal() == float(scalar.normal())

    @pytest.mark.parametrize("cls", [BatchedNormal, BatchedUniform])
    def test_block_below_one_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(RngStreams(0).derive("bad"), block=0)

    def test_batched_draws_return_floats(self):
        normal = BatchedNormal(RngStreams(2).derive("t"))
        uniform = BatchedUniform(RngStreams(2).derive("u"))
        assert type(normal.normal()) is float
        assert type(uniform.random()) is float
        assert type(uniform.uniform(1.0, 2.0)) is float
