"""The example scripts must stay runnable (they are documentation)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--duration", "20", "--cc", "static")
        assert "goodput" in out
        assert "playback latency" in out.lower()

    def test_compare_methods(self):
        out = run_example(
            "compare_methods.py", "--duration", "25", "--seeds", "1",
            "--environment", "rural",
        )
        assert "static" in out and "gcc" in out and "scream" in out

    def test_dataset_export(self, tmp_path):
        out = run_example(
            "dataset_export.py", "--duration", "15", "--out", str(tmp_path / "ds")
        )
        assert "Dataset summary" in out
        assert (tmp_path / "ds").exists()

    def test_trace_replay(self):
        out = run_example("trace_replay.py", "--duration", "25")
        assert "drop-on-latency" in out

    def test_handover_study(self):
        out = run_example("handover_study.py", "--duration", "60", "--seeds", "1")
        assert "HO/s" in out
        assert "A3" in out

    def test_all_examples_covered(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        tested = {
            "quickstart.py",
            "compare_methods.py",
            "dataset_export.py",
            "trace_replay.py",
            "handover_study.py",
        }
        assert scripts == tested, f"untested examples: {scripts - tested}"
