"""Sequence/timestamp wraparound: a full flight wraps seq space often.

At 25 Mbps the 16-bit RTP sequence space wraps roughly every 25
seconds, so every urban flight crosses it a dozen times. These tests
pin the wrap behaviour of each component that touches sequence
numbers.
"""

import pytest

from repro.net.simulator import EventLoop
from repro.rtp import (
    CcfbRecorder,
    FrameAssembler,
    JitterBuffer,
    Packetizer,
    TwccRecorder,
    seq_distance,
)
from repro.rtp.packets import RtpPacket, timestamp_for
from repro.video.frames import EncodedFrame, FrameType


def frame(frame_id, size=3000):
    return EncodedFrame(
        frame_id=frame_id,
        capture_time=frame_id / 30,
        size_bytes=size,
        frame_type=FrameType.PREDICTED,
        target_bitrate=8e6,
        complexity=1.0,
    )


class TestPacketizerWrap:
    def test_frames_span_the_wrap(self):
        packetizer = Packetizer(ssrc=1, first_sequence=65_533)
        assembler = FrameAssembler()
        finished = []
        for frame_id in range(4):
            for packet in packetizer.packetize(frame(frame_id), frame_id / 30):
                finished.extend(assembler.push(packet, frame_id / 30))
        complete = [f for f in finished if f.complete]
        assert len(complete) >= 3
        assert all(f.received_bytes == 3000 for f in complete)


class TestRecordersWrap:
    def test_twcc_across_wrap(self):
        recorder = TwccRecorder()
        for i in range(10):
            seq = (65_530 + i) % (1 << 16)
            recorder.on_packet(seq, i * 0.001)
        feedback = recorder.build_feedback()
        assert feedback.base_seq == 65_530
        assert feedback.packet_status_count == 10
        seqs = [seq for seq, arrival in feedback.iter_packets() if arrival]
        assert 0 in seqs and 3 in seqs  # post-wrap sequences covered

    def test_ccfb_across_wrap(self):
        recorder = CcfbRecorder(ssrc=1, ack_window=8)
        for i in range(12):
            seq = (65_530 + i) % (1 << 16)
            recorder.on_packet(seq, i * 0.001)
        report = recorder.build_report(now=0.1)
        assert report.end_seq == (65_530 + 11) % (1 << 16)
        assert all(r.received for r in report.reports)


class TestJitterBufferWrap:
    def test_media_time_unwraps_timestamp(self):
        loop = EventLoop()
        released = []
        buffer = JitterBuffer(loop, lambda p, t: released.append(t), latency=0.05)
        # Media times around the 32-bit/90kHz wrap (~47722 s).
        wrap_time = (1 << 32) / 90_000
        times = [wrap_time - 0.05, wrap_time - 0.02, wrap_time + 0.01]
        for i, media in enumerate(times):
            packet = RtpPacket(
                ssrc=1,
                sequence=i,
                timestamp=timestamp_for(media),
                payload_size=100,
            )
            loop.call_at(0.1 + i * 0.03, lambda p=packet, a=0.1 + i * 0.03: buffer.push(p, a))
        loop.run()
        # Releases stay ordered and roughly evenly spaced — no huge
        # jump from a mis-unwrapped timestamp.
        gaps = [b - a for a, b in zip(released, released[1:])]
        assert all(0.0 <= g < 1.0 for g in gaps)


class TestSeqDistanceEdge:
    @pytest.mark.parametrize(
        "older,newer,expected",
        [
            (65_535, 0, 1),
            (0, 65_535, -1),
            (32_767, 0, -32_767),
            (0, 32_767, 32_767),
        ],
    )
    def test_known_pairs(self, older, newer, expected):
        assert seq_distance(older, newer) == expected
