"""Tests for TWCC and RFC 8888 feedback formats and recorders."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtp.ccfb import CcfbPacketReport, CcfbRecorder, CcfbReport, ATO_UNIT
from repro.rtp.twcc import TwccFeedback, TwccRecorder, DELTA_UNIT


class TestTwccFeedback:
    def make(self, arrivals):
        return TwccFeedback(
            base_seq=100, reference_time=1.0, feedback_count=3, arrivals=arrivals
        )

    def test_iter_packets_maps_sequence_numbers(self):
        feedback = self.make([1.0, None, 1.002])
        packets = feedback.iter_packets()
        assert [seq for seq, _ in packets] == [100, 101, 102]
        assert packets[1][1] is None

    def test_roundtrip_received_and_lost(self):
        feedback = self.make([1.0, None, 1.0025, 1.010])
        parsed = TwccFeedback.from_bytes(feedback.to_bytes())
        assert parsed.base_seq == 100
        assert parsed.packet_status_count == 4
        assert parsed.arrivals[1] is None
        for original, decoded in zip(feedback.arrivals, parsed.arrivals):
            if original is not None:
                assert decoded == pytest.approx(original, abs=2 * DELTA_UNIT)

    def test_roundtrip_large_negative_delta(self):
        # Second packet arrives (slightly) before the reference-time
        # quantized baseline: requires a large (signed 16-bit) delta.
        feedback = self.make([1.05, 1.0, 1.2])
        parsed = TwccFeedback.from_bytes(feedback.to_bytes())
        assert parsed.arrivals[1] == pytest.approx(1.0, abs=0.002)

    def test_wire_size_upper_bounds_serialization(self):
        feedback = self.make([1.0, None, 1.001] * 10)
        assert feedback.wire_size >= len(feedback.to_bytes())

    @given(
        st.lists(
            st.one_of(st.none(), st.floats(0.0, 10.0)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, raw):
        # Arrival times must be non-decreasing for the delta encoding.
        arrivals = []
        last = 0.0
        for value in raw:
            if value is None:
                arrivals.append(None)
            else:
                last += value / 100.0
                arrivals.append(last)
        feedback = self.make(arrivals)
        parsed = TwccFeedback.from_bytes(feedback.to_bytes())
        assert parsed.packet_status_count == len(arrivals)
        for original, decoded in zip(arrivals, parsed.arrivals):
            assert (original is None) == (decoded is None)


class TestTwccRecorder:
    def test_feedback_covers_contiguous_range(self):
        recorder = TwccRecorder()
        recorder.on_packet(10, 1.0)
        recorder.on_packet(11, 1.001)
        recorder.on_packet(13, 1.003)  # 12 missing
        feedback = recorder.build_feedback()
        assert feedback.base_seq == 10
        assert feedback.packet_status_count == 4
        assert feedback.arrivals[2] is None

    def test_no_feedback_without_packets(self):
        assert TwccRecorder().build_feedback() is None

    def test_consecutive_feedbacks_do_not_overlap(self):
        recorder = TwccRecorder()
        recorder.on_packet(0, 1.0)
        recorder.on_packet(1, 1.001)
        first = recorder.build_feedback()
        assert first.packet_status_count == 2
        recorder.on_packet(2, 1.01)
        second = recorder.build_feedback()
        assert second.base_seq == 2
        assert second.packet_status_count == 1

    def test_feedback_count_increments(self):
        recorder = TwccRecorder()
        recorder.on_packet(0, 1.0)
        first = recorder.build_feedback()
        recorder.on_packet(1, 2.0)
        second = recorder.build_feedback()
        assert second.feedback_count == first.feedback_count + 1


class TestCcfbReport:
    def test_roundtrip(self):
        report = CcfbReport(
            ssrc=0xABCD,
            begin_seq=500,
            report_timestamp=12.5,
            reports=[
                CcfbPacketReport(received=True, arrival_offset=0.010),
                CcfbPacketReport(received=False),
                CcfbPacketReport(received=True, arrival_offset=0.002),
            ],
        )
        parsed = CcfbReport.from_bytes(report.to_bytes())
        assert parsed.ssrc == 0xABCD
        assert parsed.begin_seq == 500
        assert parsed.num_reports == 3
        assert parsed.reports[0].received
        assert not parsed.reports[1].received
        assert parsed.reports[0].arrival_offset == pytest.approx(
            0.010, abs=2 * ATO_UNIT
        )

    def test_end_seq_wraps(self):
        report = CcfbReport(
            ssrc=1,
            begin_seq=65_534,
            report_timestamp=0.0,
            reports=[CcfbPacketReport(received=True, arrival_offset=0.0)] * 4,
        )
        assert report.end_seq == 1

    def test_wire_size_matches_serialization(self):
        for count in (1, 2, 5, 64):
            report = CcfbReport(
                ssrc=1,
                begin_seq=0,
                report_timestamp=1.0,
                reports=[CcfbPacketReport(received=True, arrival_offset=0.001)]
                * count,
            )
            assert report.wire_size == len(report.to_bytes()) + 12


class TestCcfbRecorder:
    def test_window_ends_at_highest_sequence(self):
        recorder = CcfbRecorder(ssrc=1, ack_window=4)
        for seq in range(10):
            recorder.on_packet(seq, 1.0 + seq * 0.001)
        report = recorder.build_report(now=2.0)
        assert report.begin_seq == 6
        assert report.end_seq == 9
        assert all(r.received for r in report.reports)

    def test_packets_below_window_not_reported(self):
        """The Section 4.2.1 mechanism: a burst larger than the window
        leaves its oldest packets unreported forever."""
        recorder = CcfbRecorder(ssrc=1, ack_window=4)
        for seq in range(8):  # burst of 8 > window of 4
            recorder.on_packet(seq, 1.0)
        report = recorder.build_report(now=1.01)
        covered = {seq for seq, r in report.iter_packets() if r.received}
        assert covered == {4, 5, 6, 7}
        # Sequences 0-3 were delivered but never acknowledged.
        assert all(seq not in covered for seq in range(4))

    def test_gap_marked_not_received(self):
        recorder = CcfbRecorder(ssrc=1, ack_window=4)
        recorder.on_packet(0, 1.0)
        recorder.on_packet(3, 1.003)
        report = recorder.build_report(now=1.01)
        statuses = {seq: r.received for seq, r in report.iter_packets()}
        assert statuses[3] is True
        assert statuses[1] is False and statuses[2] is False

    def test_no_report_before_any_packet(self):
        assert CcfbRecorder(ssrc=1).build_report(now=0.0) is None

    def test_arrival_offsets_relative_to_report_time(self):
        recorder = CcfbRecorder(ssrc=1, ack_window=2)
        recorder.on_packet(0, 1.0)
        recorder.on_packet(1, 1.5)
        report = recorder.build_report(now=2.0)
        offsets = [r.arrival_offset for r in report.reports]
        assert offsets[0] == pytest.approx(1.0)
        assert offsets[1] == pytest.approx(0.5)

    def test_garbage_collection_bounds_memory(self):
        recorder = CcfbRecorder(ssrc=1, ack_window=64)
        for seq in range(50_000):
            recorder.on_packet(seq % (1 << 16), float(seq))
        assert len(recorder._arrivals) <= 4 * 64 + 1

    def test_invalid_ack_window_rejected(self):
        with pytest.raises(ValueError):
            CcfbRecorder(ssrc=1, ack_window=0)
