"""Failure-injection tests: the pipeline under hostile conditions.

Each test wrecks one part of the transport and checks the system
degrades the way the paper's measurements say real systems do —
gracefully, and without violating structural invariants.
"""

import numpy as np
import pytest

from repro.cc.base import StaticBitrateController
from repro.cc.gcc import GccController
from repro.cc.scream import ScreamController
from repro.core.receiver import VideoReceiver
from repro.core.sender import VideoSender
from repro.net.loss import BernoulliLoss
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop
from repro.util.rng import RngStreams
from repro.video.encoder import EncoderModel
from repro.video.source import SourceVideo


def build(controller, *, rate_fn=lambda t: 30e6, uplink_loss=None, seed=14):
    loop = EventLoop()
    streams = RngStreams(seed)
    holder = []
    uplink = NetworkPath(
        loop, rate_fn, lambda d: holder[0].on_datagram(d),
        base_delay=0.02, jitter_std=0.0,
        loss_model=uplink_loss,
    )
    downlink = NetworkPath(
        loop, lambda t: 30e6, lambda d: holder[0].on_feedback_delivered(d),
        base_delay=0.02, jitter_std=0.0,
    )
    source = SourceVideo(streams.derive("src"))
    encoder = EncoderModel(
        streams.derive("enc"), initial_bitrate=controller.target_bitrate(0.0)
    )
    sender = VideoSender(loop, source, encoder, controller, uplink)
    receiver = VideoReceiver(loop, controller, downlink)
    holder.append(receiver)
    sender.start()
    receiver.start()
    return loop, sender, receiver, uplink, downlink


class TestOutageRecovery:
    @pytest.mark.parametrize("make_controller", [
        lambda: StaticBitrateController(8e6),
        GccController,
        ScreamController,
    ])
    def test_video_resumes_after_long_outage(self, make_controller):
        controller = make_controller()
        loop, sender, receiver, uplink, downlink = build(controller)
        loop.call_at(5.0, lambda: (uplink.set_up(False), downlink.set_up(False)))
        loop.call_at(8.0, lambda: (uplink.set_up(True), downlink.set_up(True)))
        loop.run_until(20.0)
        played_after = [r for r in receiver.player.records if r.play_time > 10.0]
        assert len(played_after) > 100  # playback resumed

    def test_frames_stay_ordered_through_outage(self):
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, uplink, _ = build(controller)
        loop.call_at(3.0, lambda: uplink.set_up(False))
        loop.call_at(5.0, lambda: uplink.set_up(True))
        loop.run_until(12.0)
        ids = [r.frame_id for r in receiver.player.records]
        assert ids == sorted(ids)

    def test_gcc_rate_drops_during_outage_and_recovers(self):
        controller = GccController(initial_bitrate=2e6)
        loop, sender, receiver, uplink, downlink = build(controller)
        loop.run_until(20.0)
        before = controller.target_bitrate(20.0)
        uplink.set_up(False)
        downlink.set_up(False)
        loop.run_until(24.0)
        uplink.set_up(True)
        downlink.set_up(True)
        # Give the backlog time to drain and the spike to reach the
        # delay filter through feedback.
        loop.run_until(30.0)
        after_outage = min(
            e.target_bitrate for e in controller.log if 24.0 <= e.time <= 30.0
        )
        assert after_outage < before  # reacted to the disruption
        loop.run_until(60.0)
        recovered = controller.target_bitrate(60.0)
        assert recovered > after_outage  # and climbed back


class TestHeavyLoss:
    def test_gcc_backs_off_under_heavy_loss(self):
        loss = BernoulliLoss(0.25, np.random.default_rng(1))
        controller = GccController(initial_bitrate=10e6)
        loop, *_ = build(controller, uplink_loss=loss)
        loop.run_until(30.0)
        assert controller.target_bitrate(30.0) < 10e6

    def test_decoder_survives_heavy_loss(self):
        loss = BernoulliLoss(0.3, np.random.default_rng(2))
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, *_ = build(controller, uplink_loss=loss)
        loop.run_until(10.0)
        assert receiver.decoder.frames_decoded > 50
        assert receiver.decoder.damaged_frames > 10
        # Quality reflects the damage.
        ssims = [r.ssim for r in receiver.player.records]
        assert np.mean(ssims) < 0.7

    def test_total_blackhole_no_crash(self):
        loss = BernoulliLoss(1.0, np.random.default_rng(3))
        controller = ScreamController()
        loop, sender, receiver, *_ = build(controller, uplink_loss=loss)
        loop.run_until(10.0)
        assert receiver.player.records == []
        assert sender.stats.packets_sent > 0


class TestStarvedLink:
    def test_capacity_below_bitrate_builds_delay_not_collapse(self):
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, *_ = build(controller, rate_fn=lambda t: 4e6)
        loop.run_until(20.0)
        delays = [e.received_at - e.sent_at for e in receiver.packet_log]
        # Bufferbloat: delay grows over time, but packets keep flowing.
        assert delays[-1] > 1.0
        assert len(receiver.packet_log) > 1000

    def test_adaptive_cc_fits_into_narrow_link(self):
        controller = GccController(initial_bitrate=2e6)
        loop, sender, receiver, *_ = build(controller, rate_fn=lambda t: 5e6)
        loop.run_until(40.0)
        # Settles near (not wildly above) the 5 Mbps bottleneck.
        assert controller.target_bitrate(40.0) < 8e6
        late = [e for e in receiver.packet_log if e.received_at > 30.0]
        delays = [e.received_at - e.sent_at for e in late]
        assert np.median(delays) < 0.5


class TestFeedbackPathFailure:
    def test_dead_feedback_channel_freezes_gcc_rate(self):
        controller = GccController(initial_bitrate=2e6)
        loop, sender, receiver, uplink, downlink = build(controller)
        loop.run_until(10.0)
        mid = controller.target_bitrate(10.0)
        downlink.set_up(False)  # feedback stops; media keeps flowing
        loop.run_until(20.0)
        # Without feedback the delay-based controller cannot update.
        assert controller.target_bitrate(20.0) == pytest.approx(mid, rel=0.25)
        # Media is still delivered.
        assert any(e.received_at > 19.0 for e in receiver.packet_log)

    def test_scream_window_blocks_without_acks(self):
        controller = ScreamController()
        loop, sender, receiver, uplink, downlink = build(controller)
        loop.run_until(5.0)
        downlink.set_up(False)
        loop.run_until(15.0)
        # cwnd-gated: bytes in flight bounded even with a dead ack path.
        assert controller.bytes_in_flight <= controller.window.cwnd + 1500
