"""Tests for units, RNG streams and running statistics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util import (
    EwmaFilter,
    RngStreams,
    RunningMinMax,
    WindowedMinMax,
    bits_to_bytes,
    bytes_to_bits,
    mbps,
    ms,
    to_mbps,
    to_ms,
)


class TestUnits:
    def test_bytes_bits_roundtrip(self):
        assert bytes_to_bits(100) == 800
        assert bits_to_bytes(800) == 100

    def test_mbps_roundtrip(self):
        assert mbps(25) == 25e6
        assert to_mbps(25e6) == 25

    def test_ms_roundtrip(self):
        assert ms(150) == pytest.approx(0.150)
        assert to_ms(0.150) == pytest.approx(150)

    @given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
    def test_conversions_are_inverses(self, value):
        assert bits_to_bytes(bytes_to_bits(value)) == pytest.approx(value)
        assert to_mbps(mbps(value)) == pytest.approx(value)


class TestRngStreams:
    def test_same_seed_same_label_reproduces(self):
        a = RngStreams(7).derive("x")
        b = RngStreams(7).derive("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_differ(self):
        streams = RngStreams(7)
        a = streams.derive("a").random()
        b = streams.derive("b").random()
        assert a != b

    def test_different_seeds_differ(self):
        a = RngStreams(1).derive("x").random()
        b = RngStreams(2).derive("x").random()
        assert a != b

    def test_child_namespacing(self):
        parent = RngStreams(7)
        child1 = parent.child("one")
        child2 = parent.child("two")
        assert child1.derive("x").random() != child2.derive("x").random()

    def test_child_is_deterministic(self):
        a = RngStreams(7).child("sub").derive("x").random()
        b = RngStreams(7).child("sub").derive("x").random()
        assert a == b


class TestEwmaFilter:
    def test_first_sample_seeds_value(self):
        f = EwmaFilter(alpha=0.5)
        assert f.value is None
        assert f.update(10.0) == 10.0

    def test_converges_toward_constant_input(self):
        f = EwmaFilter(alpha=0.3, initial=0.0)
        for _ in range(100):
            f.update(5.0)
        assert f.value == pytest.approx(5.0, abs=1e-6)

    def test_alpha_one_tracks_exactly(self):
        f = EwmaFilter(alpha=1.0, initial=0.0)
        f.update(42.0)
        assert f.value == 42.0

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            EwmaFilter(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaFilter(alpha=1.5)

    def test_reset_clears_history(self):
        f = EwmaFilter(alpha=0.5, initial=10.0)
        f.reset()
        assert f.value is None

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    def test_value_stays_within_sample_hull(self, samples):
        f = EwmaFilter(alpha=0.5)
        for s in samples:
            f.update(s)
        assert min(samples) - 1e-6 <= f.value <= max(samples) + 1e-6


class TestRunningMinMax:
    def test_empty_state(self):
        r = RunningMinMax()
        assert r.count == 0
        assert math.isnan(r.spread)

    def test_tracks_extrema(self):
        r = RunningMinMax()
        for v in (3.0, -1.0, 7.0, 2.0):
            r.update(v)
        assert r.minimum == -1.0
        assert r.maximum == 7.0
        assert r.spread == 8.0

    @given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=100))
    def test_matches_builtin_min_max(self, samples):
        r = RunningMinMax()
        for s in samples:
            r.update(s)
        assert r.minimum == min(samples)
        assert r.maximum == max(samples)


class TestWindowedMinMax:
    def test_expires_old_samples(self):
        w = WindowedMinMax(window=1.0)
        w.update(0.0, 10.0)
        w.update(0.5, 5.0)
        w.update(1.4, 7.0)  # first sample now out of window
        assert w.minimum == 5.0
        assert w.maximum == 7.0

    def test_empty_window_is_nan(self):
        w = WindowedMinMax(window=1.0)
        assert math.isnan(w.minimum)
        assert math.isnan(w.maximum)

    def test_len_counts_live_samples(self):
        w = WindowedMinMax(window=1.0)
        w.update(0.0, 1.0)
        w.update(0.9, 2.0)
        assert len(w) == 2
        w.update(1.5, 3.0)
        assert len(w) == 2  # sample at t=0 expired

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedMinMax(window=0.0)

    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.floats(-1e6, 1e6)),
            min_size=1,
            max_size=50,
        )
    )
    def test_min_leq_max(self, pairs):
        w = WindowedMinMax(window=10.0)
        for t, v in sorted(pairs):
            w.update(t, v)
        assert w.minimum <= w.maximum
