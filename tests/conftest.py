"""Shared test configuration.

Registers a hypothesis profile without per-example deadlines: several
property tests drive whole simulation sessions whose first example is
legitimately slow (import + JIT-warm caches), which would trip the
default 200 ms deadline nondeterministically.
"""

from hypothesis import settings

settings.register_profile("repro", deadline=None, derandomize=True)
settings.load_profile("repro")
