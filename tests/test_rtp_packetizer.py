"""Tests for frame packetization and reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtp import FrameAssembler, Packetizer, DEFAULT_MTU_PAYLOAD
from repro.video.frames import EncodedFrame, FrameType


def make_frame(frame_id=0, size=5000, capture_time=0.0, frame_type=FrameType.PREDICTED):
    return EncodedFrame(
        frame_id=frame_id,
        capture_time=capture_time,
        size_bytes=size,
        frame_type=frame_type,
        target_bitrate=8e6,
        complexity=1.0,
    )


class TestPacketizer:
    def test_fragment_count_matches_mtu(self):
        packetizer = Packetizer(ssrc=1)
        packets = packetizer.packetize(make_frame(size=2500), encode_time=0.0)
        assert len(packets) == 3  # 1200 + 1200 + 100

    def test_payload_sizes_sum_to_frame_size(self):
        packetizer = Packetizer(ssrc=1)
        packets = packetizer.packetize(make_frame(size=4321), encode_time=0.0)
        assert sum(p.payload_size for p in packets) == 4321

    def test_marker_only_on_last_packet(self):
        packetizer = Packetizer(ssrc=1)
        packets = packetizer.packetize(make_frame(size=3000), encode_time=0.0)
        assert [p.marker for p in packets] == [False, False, True]

    def test_frame_start_only_on_first(self):
        packetizer = Packetizer(ssrc=1)
        packets = packetizer.packetize(make_frame(size=3000), encode_time=0.0)
        assert [p.frame_start for p in packets] == [True, False, False]

    def test_sequence_numbers_continuous_across_frames(self):
        packetizer = Packetizer(ssrc=1)
        first = packetizer.packetize(make_frame(frame_id=0, size=2500), 0.0)
        second = packetizer.packetize(make_frame(frame_id=1, size=100), 0.033)
        assert second[0].sequence == (first[-1].sequence + 1) % (1 << 16)

    def test_sequence_wraps_at_16_bits(self):
        packetizer = Packetizer(ssrc=1, first_sequence=65_535)
        packets = packetizer.packetize(make_frame(size=2500), 0.0)
        assert [p.sequence for p in packets] == [65_535, 0, 1]

    def test_transport_seq_assigned_when_enabled(self):
        packetizer = Packetizer(ssrc=1, use_transport_seq=True)
        packets = packetizer.packetize(make_frame(size=3000), 0.0)
        assert [p.transport_seq for p in packets] == [0, 1, 2]

    def test_transport_seq_absent_by_default(self):
        packetizer = Packetizer(ssrc=1)
        packets = packetizer.packetize(make_frame(), 0.0)
        assert all(p.transport_seq is None for p in packets)

    def test_metadata_carries_frame_info(self):
        packetizer = Packetizer(ssrc=1)
        frame = make_frame(frame_type=FrameType.IDR)
        packets = packetizer.packetize(frame, 0.0)
        assert packets[0].metadata["frame_type"] is FrameType.IDR
        assert packets[0].metadata["target_bitrate"] == 8e6

    def test_tiny_frame_single_packet(self):
        packetizer = Packetizer(ssrc=1)
        packets = packetizer.packetize(make_frame(size=10), 0.0)
        assert len(packets) == 1
        assert packets[0].marker and packets[0].frame_start

    def test_invalid_mtu_rejected(self):
        with pytest.raises(ValueError):
            Packetizer(ssrc=1, mtu_payload=0)


class TestFrameAssembler:
    def _packets(self, frame_id=0, size=3000, packetizer=None):
        packetizer = packetizer or Packetizer(ssrc=1)
        return packetizer.packetize(make_frame(frame_id=frame_id, size=size), 0.0)

    def test_complete_frame_assembled_on_marker(self):
        assembler = FrameAssembler()
        packets = self._packets()
        finished = []
        for i, packet in enumerate(packets):
            finished.extend(assembler.push(packet, arrival=0.001 * i))
        assert len(finished) == 1
        frame = finished[0]
        assert frame.complete
        assert frame.received_packets == frame.expected_packets == 3
        assert frame.received_bytes == 3000

    def test_missing_middle_packet_detected(self):
        assembler = FrameAssembler()
        packets = self._packets()
        finished = []
        finished.extend(assembler.push(packets[0], 0.0))
        # packets[1] lost
        finished.extend(assembler.push(packets[2], 0.002))
        assert len(finished) == 1
        frame = finished[0]
        assert not frame.complete
        assert frame.expected_packets == 3
        assert frame.received_packets == 2
        assert frame.loss_fraction == pytest.approx(1 / 3)

    def test_lost_marker_flushed_by_later_frame(self):
        packetizer = Packetizer(ssrc=1)
        first = self._packets(frame_id=0, packetizer=packetizer)
        second = self._packets(frame_id=1, packetizer=packetizer)
        third = self._packets(frame_id=2, packetizer=packetizer)
        assembler = FrameAssembler()
        finished = []
        finished.extend(assembler.push(first[0], 0.0))  # marker of frame 0 lost
        finished.extend(assembler.push(first[1], 0.001))
        for p in second:
            finished.extend(assembler.push(p, 0.01))
        for p in third:
            finished.extend(assembler.push(p, 0.02))
        ids = [f.frame_id for f in finished]
        assert 0 in ids and 1 in ids
        frame0 = next(f for f in finished if f.frame_id == 0)
        assert not frame0.complete

    def test_frames_emitted_in_order(self):
        packetizer = Packetizer(ssrc=1)
        assembler = FrameAssembler()
        finished = []
        for frame_id in range(5):
            for packet in self._packets(frame_id=frame_id, packetizer=packetizer):
                finished.extend(assembler.push(packet, 0.001 * frame_id))
        assert [f.frame_id for f in finished] == sorted(f.frame_id for f in finished)

    def test_duplicate_suppression_after_finalize(self):
        packetizer = Packetizer(ssrc=1)
        assembler = FrameAssembler()
        packets = self._packets(packetizer=packetizer)
        for packet in packets:
            assembler.push(packet, 0.0)
        # Straggler fragment of the already-finalized frame.
        result = assembler.push(packets[0], 0.1)
        assert result == []
        assert assembler.stray_packets == 1

    @given(
        sizes=st.lists(st.integers(100, 5000), min_size=1, max_size=15),
        drop_index=st.integers(0, 10_000),
    )
    @settings(max_examples=40)
    def test_property_total_bytes_preserved_without_loss(self, sizes, drop_index):
        packetizer = Packetizer(ssrc=1)
        assembler = FrameAssembler()
        finished = []
        t = 0.0
        for frame_id, size in enumerate(sizes):
            frame = make_frame(frame_id=frame_id, size=size)
            for packet in packetizer.packetize(frame, t):
                finished.extend(assembler.push(packet, t))
                t += 1e-4
        received = {f.frame_id: f for f in finished}
        # All but possibly the last frame must be finalized and complete.
        for frame_id, size in enumerate(sizes[:-1]):
            assert received[frame_id].complete
            assert received[frame_id].received_bytes == size
