"""Tests for the observability layer: metrics, tracing, export, CLI."""

import json
import math

import pytest

from repro.core.config import ScenarioConfig
from repro.core.session import run_session
from repro.experiments import ExperimentSettings, run_matrix
from repro.obs import (
    NULL_RECORDER,
    CampaignStatusWriter,
    Counter,
    FleetMetricsPlane,
    Gauge,
    Histogram,
    MetricsRecorder,
    MetricsRegistry,
    NullRecorder,
    ObsLevel,
    Recorder,
    TraceEvent,
    TraceFollower,
    TraceSpan,
    component_of,
    filter_records,
    format_key,
    merge_traces,
    read_jsonl,
    read_status,
    render_status,
    render_timeline,
    write_jsonl,
)
from repro.runner import CampaignRunner


class FakeClock:
    """Stand-in for the event loop: just an advanceable ``.now``."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter("gcc/overuse_events")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_value_max_updates(self):
        gauge = Gauge("gcc/target_bitrate")
        gauge.set(5.0)
        gauge.set(9.0)
        gauge.set(2.0)
        assert gauge.value == 2.0
        assert gauge.maximum == 9.0
        assert gauge.updates == 3

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=())
        with pytest.raises(ValueError):
            Histogram("x", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("x", buckets=(2.0, 1.0))

    def test_format_key(self):
        assert format_key("gcc/rtt_ms", {}) == "gcc/rtt_ms"
        assert (
            format_key("gcc/rtt_ms", {"env": "urban", "cc": "gcc"})
            == "gcc/rtt_ms{cc=gcc,env=urban}"
        )

    def test_registry_get_or_create_and_type_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("a/b") is registry.counter("a/b")
        assert registry.counter("a/b", env="x") is not registry.counter("a/b")
        with pytest.raises(TypeError):
            registry.gauge("a/b")
        with pytest.raises(TypeError):
            registry.histogram("a/b")
        assert registry.get("a/b").value == 0.0
        assert registry.get("missing/metric") is None


class TestHistogramQuantiles:
    def test_empty_histogram_is_nan(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        assert math.isnan(histogram.quantile(0.5))
        assert math.isnan(histogram.mean)

    def test_edges_are_exact_min_and_max(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.3, 4.0, 7.0, 42.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 0.3
        assert histogram.quantile(1.0) == 42.0

    def test_out_of_range_rejected(self):
        histogram = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.1)

    def test_interpolated_quantile_stays_in_data_range(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (2.0, 3.0, 4.0, 5.0):
            histogram.observe(value)
        # All mass sits in the (1, 10] bucket, so the raw interpolation
        # (1 + 9 * 0.5 = 5.5) exceeds the observed max and is clamped.
        assert histogram.quantile(0.5) == 5.0
        assert 2.0 <= histogram.quantile(0.25) <= 5.0

    def test_overflow_bucket_uses_observed_max(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(500.0)
        histogram.observe(700.0)
        assert histogram.quantile(0.99) <= 700.0
        assert histogram.quantile(0.5) >= 1.0

    def test_single_observation_all_quantiles_equal(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(3.0)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 3.0


class TestSnapshotMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("sender/packets_sent").inc(10)
        registry.gauge("gcc/target_bitrate").set(8e6)
        histogram = registry.histogram("receiver/owd_ms", buckets=(10.0, 100.0))
        histogram.observe(5.0)
        histogram.observe(50.0)
        return registry

    def test_snapshot_roundtrip(self):
        registry = self._populated()
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()

    def test_merge_is_order_independent(self):
        a = self._populated()
        b = MetricsRegistry()
        b.counter("sender/packets_sent").inc(7)
        b.gauge("gcc/target_bitrate").set(6e6)
        b.histogram("receiver/owd_ms", buckets=(10.0, 100.0)).observe(150.0)

        ab = MetricsRegistry()
        ab.merge_snapshot(a.snapshot())
        ab.merge_snapshot(b.snapshot())
        ba = MetricsRegistry()
        ba.merge_snapshot(b.snapshot())
        ba.merge_snapshot(a.snapshot())
        assert ab.snapshot() == ba.snapshot()

        assert ab.get("sender/packets_sent").value == 17
        assert ab.get("gcc/target_bitrate").value == 8e6  # merged gauge = max
        merged = ab.get("receiver/owd_ms")
        assert merged.count == 3
        assert merged.minimum == 5.0 and merged.maximum == 150.0

    def test_merge_rejects_bucket_mismatch(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1.0)
        snapshot = a.snapshot()
        b = MetricsRegistry()
        b.histogram("h", buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            b.merge_snapshot(snapshot)

    def test_render_mentions_every_metric(self):
        text = self._populated().render()
        assert "sender/packets_sent = 10" in text
        assert "gcc/target_bitrate" in text
        assert "receiver/owd_ms: n=2" in text


class TestHistogramMerge:
    def test_merge_sums_counts_and_tracks_extrema(self):
        a = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0):
            a.observe(value)
        b = Histogram("h", buckets=(1.0, 10.0))
        b.observe(50.0)
        a.merge(b)
        assert a.count == 3
        assert a.minimum == 0.5 and a.maximum == 50.0
        assert a.total == pytest.approx(55.5)

    def test_mismatched_edges_raise_with_both_edge_sets(self):
        a = Histogram("h", buckets=(1.0, 10.0))
        b = Histogram("h", buckets=(1.0, 20.0))
        with pytest.raises(ValueError) as excinfo:
            a.merge(b)
        message = str(excinfo.value)
        assert "bucket edges differ" in message
        assert "10.0" in message and "20.0" in message

    def test_from_record_rejects_wrong_counts_length(self):
        record = {
            "name": "h", "labels": {}, "buckets": [1.0, 10.0],
            "counts": [1, 2],  # needs len(buckets) + 1 entries
            "count": 3, "total": 4.0, "min": 1.0, "max": 3.0,
        }
        with pytest.raises(ValueError, match="counts"):
            Histogram.from_record(record)


# ----------------------------------------------------------------------
# recorders
# ----------------------------------------------------------------------
class TestNullRecorder:
    def test_disabled_and_shared(self):
        assert NullRecorder.enabled is False
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)

    def test_all_record_calls_are_noops(self):
        null = NullRecorder()
        null.event("gcc.overuse", offset_ms=1.0)
        null.span_at("handover.execution", 1.0, 2.0)
        with null.span("outer.block") as span:
            assert span is None
        null.count("a/b")
        null.gauge("a/b", 1.0)
        null.observe("a/b", 1.0)
        assert not hasattr(null, "trace")
        assert not hasattr(null, "registry")

    def test_recorder_is_a_null_recorder(self):
        # Components annotate their slot as NullRecorder; the live
        # recorder must satisfy the same interface by inheritance.
        assert isinstance(Recorder(), NullRecorder)
        assert Recorder.enabled is True


class TestObsLevel:
    def test_coerce_accepts_the_legacy_bool_spellings(self):
        assert ObsLevel.coerce(None) is ObsLevel.OFF
        assert ObsLevel.coerce(False) is ObsLevel.OFF
        assert ObsLevel.coerce(True) is ObsLevel.TRACE

    def test_coerce_accepts_strings_case_insensitively(self):
        assert ObsLevel.coerce("off") is ObsLevel.OFF
        assert ObsLevel.coerce("metrics") is ObsLevel.METRICS
        assert ObsLevel.coerce("TRACE") is ObsLevel.TRACE

    def test_coerce_passes_levels_through(self):
        for level in ObsLevel:
            assert ObsLevel.coerce(level) is level

    def test_coerce_rejects_unknown_values(self):
        with pytest.raises(ValueError):
            ObsLevel.coerce("loud")
        with pytest.raises(TypeError):
            ObsLevel.coerce(3)

    def test_recorder_tiers_carry_their_level(self):
        assert NullRecorder.level is ObsLevel.OFF
        assert MetricsRecorder.level is ObsLevel.METRICS
        assert Recorder.level is ObsLevel.TRACE


class TestMetricsRecorder:
    def test_trace_calls_are_noops_but_metrics_are_live(self):
        recorder = MetricsRecorder()
        recorder.event("gcc.overuse", offset_ms=1.0)
        recorder.span_at("handover.execution", 1.0, 2.0)
        with recorder.span("handover.execution"):
            recorder.count("handover/executed")
        recorder.gauge("gcc/target_bitrate", 5e6)
        recorder.observe("receiver/owd_ms", 42.0)
        assert recorder.trace == []
        assert recorder.registry.get("handover/executed").value == 1
        assert recorder.registry.get("gcc/target_bitrate").value == 5e6
        assert recorder.registry.get("receiver/owd_ms").count == 1


class TestRecorder:
    def test_component_of(self):
        assert component_of("gcc.overuse") == "gcc"
        assert component_of("sender/bytes_sent") == "sender"
        assert component_of("plain") == "plain"

    def test_event_defaults_to_sim_clock(self):
        clock = FakeClock(3.5)
        recorder = Recorder()
        assert recorder.now == 0.0  # unbound
        recorder.bind(clock)
        recorder.event("gcc.overuse", offset_ms=2.0)
        clock.now = 4.0
        recorder.event("gcc.rate_decrease")
        recorder.event("jitter.gap", t=1.25)
        times = [record.time for record in recorder.trace]
        assert times == [3.5, 4.0, 1.25]
        assert recorder.trace[0].labels == {"offset_ms": 2.0}

    def test_span_nesting_under_sim_clock(self):
        clock = FakeClock(10.0)
        recorder = Recorder(clock)
        with recorder.span("handover.execution", target=5):
            clock.now = 10.5
            recorder.event("gcc.overuse")
            with recorder.span("gcc.backoff"):
                clock.now = 10.8
            clock.now = 11.0
        recorder.event("jitter.gap")

        outer, event, inner, after = recorder.trace
        assert isinstance(outer, TraceSpan)
        assert (outer.t0, outer.t1, outer.depth) == (10.0, 11.0, 0)
        assert outer.duration == pytest.approx(1.0)
        assert (event.time, event.depth) == (10.5, 1)
        assert (inner.t0, inner.t1, inner.depth) == (10.5, 10.8, 1)
        assert after.depth == 0  # depth restored after exit

    def test_span_at_explicit_bounds(self):
        recorder = Recorder(FakeClock(2.0))
        recorder.span_at("handover.execution", 5.0, 5.04, target=3)
        (span,) = recorder.trace
        assert (span.t0, span.t1) == (5.0, 5.04)
        assert span.component == "handover"

    def test_metric_helpers_hit_registry(self):
        recorder = Recorder()
        recorder.count("sender/packets_sent", 3)
        recorder.gauge("gcc/target_bitrate", 7e6)
        recorder.observe("receiver/owd_ms", 42.0, buckets=(10.0, 100.0))
        assert recorder.registry.get("sender/packets_sent").value == 3
        assert recorder.registry.get("gcc/target_bitrate").value == 7e6
        assert recorder.registry.get("receiver/owd_ms").count == 1


# ----------------------------------------------------------------------
# export / timeline
# ----------------------------------------------------------------------
def _sample_recorder() -> Recorder:
    recorder = Recorder(FakeClock(0.0))
    recorder.span_at("handover.execution", 12.3, 12.332, source=3, target=5)
    recorder.event("gcc.overuse", t=12.355, offset_ms=1.84)
    recorder.event("gcc.rate_decrease", t=12.405, from_bps=8.1e6, to_bps=6.9e6)
    recorder.event("jitter.gap", t=12.5, packets=4)
    recorder.count("handover/executed")
    recorder.observe("gcc/rtt_ms", 85.0)
    return recorder


class TestJsonlRoundtrip:
    def test_roundtrip_is_lossless(self, tmp_path):
        recorder = _sample_recorder()
        path = write_jsonl(tmp_path / "run.jsonl", recorder)
        trace, registry = read_jsonl(path)
        assert trace == recorder.trace
        assert registry.snapshot() == recorder.registry.snapshot()

    def test_lines_are_json_with_type_tags(self, tmp_path):
        path = write_jsonl(tmp_path / "run.jsonl", _sample_recorder())
        types = [json.loads(line)["type"] for line in path.read_text().splitlines()]
        assert types == ["span", "event", "event", "event", "metric", "metric"]

    def test_invalid_json_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "event", "name": "a", "t": 1}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            read_jsonl(path)


class TestTimeline:
    def test_merge_orders_by_sim_time_stably(self):
        a = [TraceEvent("gcc.overuse", 2.0), TraceEvent("gcc.overuse", 5.0)]
        b = [TraceSpan("handover.execution", 1.0, 3.0), TraceEvent("jitter.gap", 2.0)]
        merged = merge_traces(a, b)
        assert [record.sort_time for record in merged] == [1.0, 2.0, 2.0, 5.0]
        # stable: a's 2.0 event precedes b's 2.0 event
        assert merged[1].name == "gcc.overuse"
        assert merged[2].name == "jitter.gap"

    def test_filter_by_component(self):
        records = _sample_recorder().trace
        gcc_only = filter_records(records, components=["gcc"])
        assert {record.component for record in gcc_only} == {"gcc"}
        assert len(gcc_only) == 2

    def test_filter_window_keeps_overlapping_spans(self):
        records = _sample_recorder().trace
        window = filter_records(records, t0=12.31, t1=12.36)
        names = [record.name for record in window]
        # span overlaps the window even though it starts before t0;
        # the 12.405/12.5 events fall outside.
        assert names == ["handover.execution", "gcc.overuse"]

    def test_render_timeline_shape(self):
        text = render_timeline(merge_traces(_sample_recorder().trace))
        assert "t (s)" in text
        assert "▶ handover.execution [+0.032 s]" in text
        assert "· gcc.overuse offset_ms=1.84" in text
        assert text.index("handover.execution") < text.index("gcc.overuse")

    def test_render_empty(self):
        assert "(no records)" in render_timeline([])


class TestOpenSpans:
    """Spans whose end was never recorded (truncated trace)."""

    def test_open_span_properties(self):
        span = TraceSpan("handover.execution", 4.0)
        assert span.open
        assert span.t1 is None
        assert math.isnan(span.duration)
        closed = TraceSpan("handover.execution", 4.0, 4.5)
        assert not closed.open
        assert closed.duration == pytest.approx(0.5)

    def test_timeline_marks_open_spans(self):
        text = render_timeline([
            TraceSpan("handover.execution", 4.0, labels={"target": 2}),
            TraceEvent("gcc.overuse", 5.0),
        ])
        assert "▶ handover.execution [open]" in text
        assert "+nan" not in text

    def test_filter_window_keeps_open_span(self):
        records = [
            TraceSpan("handover.execution", 4.0),
            TraceEvent("gcc.overuse", 20.0),
        ]
        # An open span extends to the end of the trace, so it overlaps
        # any window starting after it began.
        window = filter_records(records, t0=10.0, t1=15.0)
        assert [record.name for record in window] == ["handover.execution"]

    def test_jsonl_line_missing_t1_loads_as_open_span(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        path.write_text(
            '{"type": "span", "name": "handover.execution", "t0": 4.0}\n'
        )
        trace, _ = read_jsonl(path)
        assert trace == [TraceSpan("handover.execution", 4.0)]

    def test_open_span_export_roundtrip(self, tmp_path):
        recorder = Recorder()
        recorder.trace.append(TraceSpan("loss.burst", 2.0, labels={"packets": 3}))
        path = write_jsonl(tmp_path / "open.jsonl", recorder)
        trace, _ = read_jsonl(path)
        assert trace == recorder.trace
        assert trace[0].open


# ----------------------------------------------------------------------
# end-to-end: instrumented sessions and campaigns
# ----------------------------------------------------------------------
QUICK = ScenarioConfig(cc="gcc", duration=12.0, seed=1)


def _headline(result):
    return (
        result.packets_sent,
        result.frames_decoded,
        result.packet_log,
        result.playback,
        [(e.time, e.source, e.target) for e in result.handovers],
        result.cc_log,
    )


class TestTracedSession:
    def test_traced_run_bit_identical_to_untraced(self):
        untraced = run_session(QUICK)
        recorder = Recorder()
        traced = run_session(QUICK, recorder=recorder)
        assert _headline(traced) == _headline(untraced)
        assert "metrics" not in (untraced.extra or {})
        assert traced.extra["metrics"]  # snapshot attached

    def test_traced_run_captures_expected_instruments(self):
        recorder = Recorder()
        run_session(QUICK, recorder=recorder)
        registry = recorder.registry
        assert registry.get("sender/packets_sent").value > 0
        assert registry.get("receiver/packets").value > 0
        assert registry.get("gcc/target_bitrate").updates > 0
        assert registry.get("receiver/owd_ms").count > 0
        components = {record.component for record in recorder.trace}
        assert "handover" in components
        # Timestamps are sim time: inside [0, duration].
        for record in recorder.trace:
            assert 0.0 <= record.sort_time <= QUICK.duration + 1.0


class TestCampaignMetricsMerge:
    SETTINGS = ExperimentSettings(duration=12.0, seeds=(1, 2), warmup=2.0)
    CONFIGS = [ScenarioConfig(cc="gcc", environment="urban")]

    def test_merge_across_worker_processes(self):
        with CampaignRunner(1) as serial, CampaignRunner(2) as parallel:
            run_matrix(self.CONFIGS, self.SETTINGS, runner=serial, obs=True)
            run_matrix(self.CONFIGS, self.SETTINGS, runner=parallel, obs=True)
        # Merge rules are order-independent, so serial and two-worker
        # campaigns agree exactly, whatever the completion order.
        assert serial.metrics.snapshot() == parallel.metrics.snapshot()
        assert serial.metrics.get("sender/packets_sent").value > 0

    def test_obs_off_collects_nothing(self):
        with CampaignRunner(1) as runner:
            results = run_matrix(self.CONFIGS, self.SETTINGS, runner=runner)
        assert len(runner.metrics) == 0
        for group in results.values():
            for result in group:
                assert "metrics" not in (result.extra or {})

    def test_obs_is_part_of_cache_identity(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        with CampaignRunner(1, cache=cache) as runner:
            run_matrix(self.CONFIGS, self.SETTINGS, runner=runner)
            assert runner.telemetry.cache_hits == 0
            run_matrix(self.CONFIGS, self.SETTINGS, runner=runner, obs=True)
            # obs=True units must not reuse the untraced cache entries.
            assert runner.telemetry.cache_hits == 0
            assert runner.telemetry.executed == 2 * len(self.SETTINGS.seeds)


class TestRunnerPoolLifecycle:
    def test_close_is_idempotent(self):
        runner = CampaignRunner(2)
        runner.close()
        runner.close()

    def test_pool_reused_across_runs_and_recreated_after_close(self):
        from repro.experiments import run_ping_probe

        # Two seeds: single-unit campaigns run serial and never build
        # a pool.
        settings = ExperimentSettings(duration=5.0, seeds=(1, 2), warmup=1.0)
        runner = CampaignRunner(2)
        run_ping_probe(self.config(), settings, rate_hz=5.0, runner=runner)
        pool = runner._pool
        assert pool is not None
        run_ping_probe(self.config(), settings, rate_hz=2.0, runner=runner)
        assert runner._pool is pool  # persistent across run() calls
        runner.close()
        assert runner._pool is None
        # Closed runner is reusable: a new pool is created on demand.
        run_ping_probe(self.config(), settings, rate_hz=1.0, runner=runner)
        assert runner._pool is not None and runner._pool is not pool
        runner.close()

    def test_context_manager_tears_down(self):
        from repro.experiments import run_ping_probe

        settings = ExperimentSettings(duration=5.0, seeds=(1, 2), warmup=1.0)
        with CampaignRunner(2) as runner:
            run_ping_probe(self.config(), settings, rate_hz=5.0, runner=runner)
            assert runner._pool is not None
        assert runner._pool is None

    @staticmethod
    def config() -> ScenarioConfig:
        return ScenarioConfig(cc="static", environment="urban")


# ----------------------------------------------------------------------
# vectorized fleet metrics plane
# ----------------------------------------------------------------------
class FakeChannel:
    """Post-tick per-member channel state the plane reads."""

    def __init__(self, bps: float, share: float, sinr: float) -> None:
        self._uplink_bps = bps
        self._share_ul = share
        self._sinr_db = sinr


class FakeSample:
    def __init__(self, bps: float, share: float, sinr: float) -> None:
        self.uplink_bps = bps
        self.uplink_share = share
        self.sinr_db = sinr


TICKS = [
    [(12e6, 1.0, 18.0), (4e6, 0.6, 7.5)],
    [(9e6, 0.7, 12.0), (3e6, 0.5, 3.0)],
    [(15e6, 1.0, 22.0), (6e6, 0.74, 9.0)],
]


def _live_plane() -> FleetMetricsPlane:
    plane = FleetMetricsPlane(2)
    for tick in TICKS:
        plane.observe_channels([FakeChannel(*member) for member in tick])
    return plane


class TestFleetMetricsPlane:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ValueError):
            FleetMetricsPlane(0)

    def test_snapshot_counts_and_congestion(self):
        plane = _live_plane()
        snapshot = plane.snapshot()
        by_key = {
            (record["name"], record["labels"]["member"]): record
            for record in snapshot
        }
        assert by_key[("fleet/ticks", 0)]["value"] == 3.0
        # Member 0 dips below 0.75 once (0.7), member 1 all three ticks.
        assert by_key[("fleet/congestion_time", 0)]["value"] == (
            pytest.approx(0.1)
        )
        assert by_key[("fleet/congestion_time", 1)]["value"] == (
            pytest.approx(0.3)
        )
        rate = by_key[("fleet/uplink_bps", 1)]
        assert rate["count"] == 3
        assert rate["min"] == 3e6 and rate["max"] == 6e6
        assert sum(rate["counts"]) == 3

    def test_share_boundary_is_strictly_below(self):
        # share == congestion_share is NOT congested (Channel uses <).
        plane = FleetMetricsPlane(1, congestion_share=0.75)
        plane.observe_channels([FakeChannel(1e6, 0.75, 10.0)])
        plane.observe_channels([FakeChannel(1e6, 0.7499, 10.0)])
        (record,) = [
            r for r in plane.snapshot() if r["name"] == "fleet/congestion_time"
        ]
        assert record["value"] == pytest.approx(0.1)

    def test_scalar_replay_is_bit_identical_to_live(self):
        live = _live_plane()
        replay = FleetMetricsPlane(2)
        replay.observe_samples([
            [FakeSample(*tick[member]) for tick in TICKS]
            for member in range(2)
        ])
        assert replay.snapshot() == live.snapshot()

    def test_replay_rejects_ragged_sample_lists(self):
        plane = FleetMetricsPlane(2)
        with pytest.raises(ValueError, match="lockstep"):
            plane.observe_samples([
                [FakeSample(1e6, 1.0, 10.0)],
                [],
            ])

    def test_bucket_attribution_matches_histogram_observe(self):
        # Values landing exactly on an edge must fall in the same
        # bucket the scalar Histogram puts them in (bisect_left).
        plane = FleetMetricsPlane(1)
        plane.observe_channels([FakeChannel(1e6, 0.5, 0.0)])
        registry = MetricsRegistry()
        plane.fold_into(registry)
        from repro.obs import RATE_BUCKETS

        scalar = Histogram("fleet/uplink_bps", buckets=RATE_BUCKETS)
        scalar.observe(1e6)
        merged = registry.get("fleet/uplink_bps", member=0)
        assert merged.counts == scalar.counts

    def test_fold_into_merges_order_independently(self):
        # Two planes (e.g. two fleets of a campaign) must merge into
        # one registry identically whatever the completion order.
        a = _live_plane()
        b = FleetMetricsPlane(2)
        b.observe_channels([FakeChannel(2e6, 0.4, -2.0),
                            FakeChannel(8e6, 0.9, 14.0)])
        ab = MetricsRegistry()
        a.fold_into(ab)
        b.fold_into(ab)
        ba = MetricsRegistry()
        b.fold_into(ba)
        a.fold_into(ba)
        assert ab.snapshot() == ba.snapshot()
        assert ab.get("fleet/ticks", member=0).value == 4.0

    def test_ingestion_time_lands_in_overhead(self):
        plane = _live_plane()
        assert plane.overhead_s > 0.0


# ----------------------------------------------------------------------
# growing-file tolerance: read_jsonl tail + TraceFollower
# ----------------------------------------------------------------------
class TestPartialTail:
    def test_read_jsonl_skips_unterminated_tail(self, tmp_path):
        path = tmp_path / "growing.jsonl"
        path.write_text(
            '{"type": "event", "name": "gcc.overuse", "t": 1.0}\n'
            '{"type": "event", "name": "jitter.g'  # writer mid-record
        )
        trace, _ = read_jsonl(path)
        assert [record.name for record in trace] == ["gcc.overuse"]

    def test_read_jsonl_still_rejects_interior_corruption(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            'garbage\n{"type": "event", "name": "gcc.overuse", "t": 1.0}\n'
        )
        with pytest.raises(ValueError, match=":1"):
            read_jsonl(path)


class TestTraceFollower:
    def test_missing_file_yields_nothing(self, tmp_path):
        follower = TraceFollower(tmp_path / "absent.jsonl")
        assert follower.poll() == []

    def test_incremental_polls_return_only_new_records(self, tmp_path):
        path = tmp_path / "live.jsonl"
        follower = TraceFollower(path)
        with path.open("w") as handle:
            handle.write('{"type": "event", "name": "gcc.overuse", "t": 1.0}\n')
            handle.flush()
            assert [r.name for r in follower.poll()] == ["gcc.overuse"]
            assert follower.poll() == []
            handle.write('{"type": "event", "name": "jitter.gap", "t": 2.0}\n')
            handle.flush()
            assert [r.name for r in follower.poll()] == ["jitter.gap"]

    def test_partial_line_completes_on_a_later_poll(self, tmp_path):
        path = tmp_path / "live.jsonl"
        follower = TraceFollower(path)
        line = '{"type": "event", "name": "loss.burst", "t": 3.0}\n'
        with path.open("w") as handle:
            handle.write(line[:20])
            handle.flush()
            assert follower.poll() == []
            handle.write(line[20:])
            handle.flush()
            assert [r.name for r in follower.poll()] == ["loss.burst"]

    def test_truncation_resets_the_follower(self, tmp_path):
        path = tmp_path / "live.jsonl"
        follower = TraceFollower(path)
        path.write_text(
            '{"type": "event", "name": "gcc.overuse", "t": 1.0}\n' * 3
        )
        assert len(follower.poll()) == 3
        path.write_text('{"type": "event", "name": "jitter.gap", "t": 9.0}\n')
        assert [r.name for r in follower.poll()] == ["jitter.gap"]

    def test_metric_lines_accumulate_separately(self, tmp_path):
        path = tmp_path / "live.jsonl"
        write_jsonl(path, _sample_recorder())
        follower = TraceFollower(path)
        records = follower.poll()
        assert len(records) == 4
        assert len(follower.registry_snapshot) == 2
        rebuilt = MetricsRegistry.from_snapshot(follower.registry_snapshot)
        assert rebuilt.get("handover/executed").value == 1


# ----------------------------------------------------------------------
# live campaign status plane
# ----------------------------------------------------------------------
class FakeTelemetryRecord:
    def __init__(self, worker="w0", unit="u", wall_time=2.0, cache_hit=False):
        self.worker = worker
        self.unit = unit
        self.wall_time = wall_time
        self.cache_hit = cache_hit


class FakeFleetResult:
    def __init__(self, peak, occupancy):
        self.peak_occupancy = peak
        self.occupancy = occupancy


class TestCampaignStatusWriter:
    def _writer(self, tmp_path, **kwargs):
        kwargs.setdefault("interval", 0.0)  # no throttle in tests
        return CampaignStatusWriter(str(tmp_path / "status.json"), **kwargs)

    def test_begin_writes_an_atomic_document(self, tmp_path):
        writer = self._writer(tmp_path, workers=4)
        writer.begin(10)
        status = read_status(writer.path)
        assert status["total"] == 10 and status["done"] == 0
        assert status["finished"] is False
        assert not list(tmp_path.glob("*.tmp.*"))  # temp file replaced

    def test_notes_track_progress_cache_and_workers(self, tmp_path):
        writer = self._writer(tmp_path)
        writer.begin(3)
        writer.note(FakeTelemetryRecord("w0", "a", 2.0, False), 1, 3)
        writer.note(FakeTelemetryRecord("w1", "b", 0.0, True), 2, 3)
        status = read_status(writer.path)
        assert status["done"] == 2
        assert status["cache_hits"] == 1 and status["executed"] == 1
        assert status["workers"]["w0"]["unit"] == "a"
        assert status["workers"]["w1"]["cache_hit"] is True

    def test_eta_extrapolates_from_executed_wall_time(self, tmp_path):
        writer = self._writer(tmp_path, workers=2)
        writer.begin(5)
        assert writer.eta_s is None  # no executed history yet
        writer.note(FakeTelemetryRecord(wall_time=4.0), 1, 5)
        # 4 remaining x 4 s mean / 2 workers = 8 s.
        assert writer.eta_s == pytest.approx(8.0)
        for done in (2, 3, 4, 5):
            writer.note(FakeTelemetryRecord(wall_time=4.0), done, 5)
        assert writer.eta_s == 0.0

    def test_cache_hits_do_not_skew_eta(self, tmp_path):
        writer = self._writer(tmp_path)
        writer.begin(4)
        writer.note(FakeTelemetryRecord(wall_time=6.0, cache_hit=False), 1, 4)
        writer.note(FakeTelemetryRecord(wall_time=0.01, cache_hit=True), 2, 4)
        assert writer.eta_s == pytest.approx(2 * 6.0)

    def test_note_result_harvests_cell_occupancy(self, tmp_path):
        writer = self._writer(tmp_path)
        writer.begin(1)
        writer.note_result(FakeFleetResult({3: 4, 7: 2}, {3: 1, 7: 2}))
        writer.note_result(FakeFleetResult({3: 2}, {3: 3}))
        writer.finish()
        status = read_status(writer.path)
        assert status["finished"] is True
        assert status["cells"]["3"] == {"peak": 4, "last": 3}
        assert status["cells"]["7"] == {"peak": 2, "last": 2}

    def test_results_without_occupancy_are_ignored(self, tmp_path):
        writer = self._writer(tmp_path)
        writer.begin(1)
        writer.note_result(object())  # a session result, no occupancy
        assert writer.to_dict()["cells"] == {}

    def test_throttle_suppresses_intermediate_writes(self, tmp_path):
        writer = CampaignStatusWriter(
            str(tmp_path / "status.json"), interval=3600.0
        )
        writer.begin(2)
        first = (tmp_path / "status.json").read_text()
        writer.note(FakeTelemetryRecord(), 1, 2)
        assert (tmp_path / "status.json").read_text() == first  # throttled
        writer.finish()  # force-writes
        assert read_status(writer.path)["finished"] is True


class TestReadRenderStatus:
    def test_read_missing_or_torn_returns_none(self, tmp_path):
        assert read_status(str(tmp_path / "absent.json")) is None
        bad = tmp_path / "torn.json"
        bad.write_text('{"done": 1,')
        assert read_status(str(bad)) is None

    def test_render_no_status(self):
        assert "no campaign status" in render_status(None)

    def test_render_shows_progress_workers_and_cells(self, tmp_path):
        writer = CampaignStatusWriter(
            str(tmp_path / "status.json"), interval=0.0, workers=2
        )
        writer.begin(4)
        writer.note(FakeTelemetryRecord("w0", "fleet-n4-s1", 3.0), 1, 4)
        writer.note(FakeTelemetryRecord("w1", "fleet-n4-s2", 0.0, True), 2, 4)
        writer.note_result(FakeFleetResult({5: 3}, {5: 2}))
        text = render_status(read_status(writer.path))
        assert "2/4 units" in text
        assert "1 cached" in text and "1 executed" in text
        assert "fleet-n4-s1" in text and "[cache]" in text
        assert "cell 5: 2 UEs (peak 3)" in text

    def test_render_finished_campaign_says_done(self, tmp_path):
        writer = CampaignStatusWriter(str(tmp_path / "s.json"), interval=0.0)
        writer.begin(1)
        writer.note(FakeTelemetryRecord(), 1, 1)
        writer.finish()
        assert "done" in render_status(read_status(writer.path))
