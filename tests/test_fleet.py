"""Tests for shared-cell fleet contention: PRB scheduler, multi-session
engine, N=1 bit-identity and the QoE-vs-density experiment."""

import math

import numpy as np
import pytest

from repro.cellular.cell import (
    CellCapacityConfig,
    CellContention,
    _member_share,
    allocate_prbs,
    allocate_prbs_array,
    fleet_demand_bps,
    merge_occupancy,
    normalize_cell_map,
)
from repro.core.config import ScenarioConfig
from repro.core.fleet import FleetConfig, FleetResult, _ring_offset, run_fleet
from repro.core.session import run_session
from repro.experiments import ExperimentSettings
from repro.experiments.fleet import fleet_unit, run_fleet_density
from repro.obs import Recorder
from repro.obs.attribute import CELL_CONGESTION, causes_from_trace
from repro.runner import WORK_FLEET, execute_unit

BASE = ScenarioConfig(
    cc="gcc", environment="urban", platform="air", operator="P1",
    seed=7, duration=30.0,
)


# ----------------------------------------------------------------------
# PRB allocator
# ----------------------------------------------------------------------
class TestAllocatePrbs:
    def test_single_requester_gets_whole_budget(self):
        assert allocate_prbs([13], 100) == [100]

    def test_sum_never_exceeds_budget(self):
        for requests in ([1, 1, 1], [100, 100], [7, 13, 29, 100], [3]):
            for budget in (1, 7, 100):
                allocation = allocate_prbs(requests, budget)
                assert sum(allocation) == budget
                assert all(0 <= a <= budget for a in allocation)

    def test_proportional_split(self):
        assert allocate_prbs([50, 50], 100) == [50, 50]
        assert allocate_prbs([75, 25], 100) == [75, 25]

    def test_largest_remainder_redistributes_exactly(self):
        allocation = allocate_prbs([1, 1, 1], 100)
        assert sum(allocation) == 100
        assert sorted(allocation) == [33, 33, 34]

    def test_deterministic_tie_break(self):
        assert allocate_prbs([1, 1], 3) == allocate_prbs([1, 1], 3)
        assert allocate_prbs([1, 1], 3) == [2, 1]

    def test_zero_and_empty_requests(self):
        assert allocate_prbs([], 100) == []
        assert allocate_prbs([0, 0], 100) == [0, 0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            allocate_prbs([-1], 100)
        with pytest.raises(ValueError):
            allocate_prbs([1], -5)

    def test_zero_budget(self):
        assert allocate_prbs([5, 7], 0) == [0, 0]
        assert allocate_prbs_array(np.array([5, 7]), 0).tolist() == [0, 0]

    def test_sum_exactly_budget_under_large_n(self):
        rng = np.random.default_rng(11)
        for n in (50, 257, 1000):
            requests = rng.integers(0, 100, size=n).tolist()
            if sum(requests) == 0:
                continue
            allocation = allocate_prbs(requests, 100)
            assert sum(allocation) == 100
            assert all(a >= 0 for a in allocation)

    def test_array_allocator_matches_scalar_elementwise(self):
        # Promised in the allocate_prbs_array docstring: bit-identical
        # allocations under large random request vectors, including
        # remainder ties.
        rng = np.random.default_rng(42)
        for _ in range(25):
            n = int(rng.integers(1, 300))
            budget = int(rng.integers(1, 200))
            requests = rng.integers(0, 8, size=n)
            array = allocate_prbs_array(requests, budget)
            scalar = allocate_prbs(requests.tolist(), budget)
            assert array.tolist() == scalar

    def test_member_share_matches_full_allocation(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            n = int(rng.integers(2, 40))
            budget = int(rng.integers(1, 150))
            requests = rng.integers(0, 6, size=n).astype(np.int64)
            total = int(requests.sum())
            if total == 0:
                assert _member_share(requests, 0, budget, total) == 0.0
                continue
            full = allocate_prbs(requests.tolist(), budget)
            for index in range(n):
                share = _member_share(requests, index, budget, total)
                assert share == full[index] / budget


# ----------------------------------------------------------------------
# fleet ring placement
# ----------------------------------------------------------------------
class TestRingOffset:
    def test_member_zero_flies_the_base_route(self):
        assert _ring_offset(0, 8, 50.0) == (0.0, 0.0)

    def test_degenerate_rings_collapse_to_origin(self):
        # N=1 (count <= 1) and radius 0 both place everyone on the
        # base route — the N=1 bit-identity to run_session depends on
        # no TranslatedTrajectory wrapper being installed.
        assert _ring_offset(1, 1, 50.0) == (0.0, 0.0)
        assert _ring_offset(3, 8, 0.0) == (0.0, 0.0)

    def test_two_member_ring_places_satellite_east(self):
        # N=2: the single satellite sits at angle 0 (dx=radius, dy=0),
        # not at a divide-by-zero.
        assert _ring_offset(1, 2, 50.0) == (50.0, 0.0)

    def test_ring_members_sit_on_the_circle(self):
        for index in range(1, 8):
            dx, dy = _ring_offset(index, 8, 25.0)
            assert math.hypot(dx, dy) == pytest.approx(25.0)


# ----------------------------------------------------------------------
# contention bookkeeping
# ----------------------------------------------------------------------
class TestCellContention:
    def _contention(self, **kwargs):
        return CellContention(4, CellCapacityConfig(**kwargs))

    def test_sole_occupant_share_is_exactly_one(self):
        contention = self._contention()
        contention.register(0, demand_ul_bps=5e6)
        contention.attach(0, 2)
        contention.update_rates(0, 30e6, 180e6)
        assert contention.shares(0) == (1.0, 1.0)

    def test_shares_sum_to_one_on_shared_cell(self):
        contention = self._contention()
        for ue in range(3):
            contention.register(ue, demand_ul_bps=20e6)
            contention.attach(ue, 1)
            contention.update_rates(ue, 30e6 + ue * 1e6, 120e6)
        total_ul = sum(contention.shares(ue)[0] for ue in range(3))
        total_dl = sum(contention.shares(ue)[1] for ue in range(3))
        assert total_ul == pytest.approx(1.0, abs=1e-12)
        assert total_dl == pytest.approx(1.0, abs=1e-12)

    def test_weak_radio_ue_requests_more_prbs(self):
        contention = self._contention()
        contention.register(0, demand_ul_bps=5e6)
        contention.register(1, demand_ul_bps=5e6)
        contention.attach(0, 0)
        contention.attach(1, 0)
        contention.update_rates(0, 40e6, 200e6)  # strong: few PRBs needed
        contention.update_rates(1, 8e6, 40e6)  # weak: many PRBs needed
        strong, weak = contention.shares(0)[0], contention.shares(1)[0]
        assert weak > strong

    def test_offsets_zero_until_crowded_then_clamped(self):
        contention = self._contention(lb_step_db=2.0, lb_max_db=6.0)
        for ue in range(5):
            contention.register(ue)
        contention.attach(0, 1)
        assert np.all(contention.offsets() == 0.0)
        contention.attach(1, 1)
        assert contention.offsets()[1] == -2.0
        for ue in (2, 3, 4):
            contention.attach(ue, 1)
        assert contention.offsets()[1] == -6.0  # clamped at lb_max_db
        assert contention.offsets()[0] == 0.0

    def test_blocked_cells_at_admission_cap(self):
        contention = self._contention(max_sessions=2)
        for ue in range(3):
            contention.register(ue)
        contention.attach(0, 0)
        contention.attach(1, 0)
        assert contention.blocked_cells(2) == (0,)
        # members of the full cell are never blocked from it
        assert contention.blocked_cells(0) == ()

    def test_reattach_moves_membership_and_peak(self):
        contention = self._contention()
        contention.register(0)
        contention.register(1)
        contention.attach(0, 0)
        contention.attach(1, 0)
        contention.attach(0, 3)
        assert contention.occupancy() == {0: 1, 3: 1}
        assert contention.peak_attached[0] == 2
        assert contention.attached_count(0) == 1

    def test_cell_load_counts_served_demand_only(self):
        contention = self._contention()
        contention.register(0, demand_ul_bps=3e6)
        contention.attach(0, 0)
        contention.update_rates(0, 30e6, 120e6)
        # Demand needs ~10 of 100 PRBs: low utilization, not 1.0.
        assert 0.0 < contention.cell_load(0) < 0.2
        assert contention.loads() == {0: contention.cell_load(0)}

    def test_duplicate_register_rejected(self):
        contention = self._contention()
        contention.register(0)
        with pytest.raises(ValueError):
            contention.register(0)

    def test_merge_occupancy_takes_per_cell_max(self):
        merged = merge_occupancy([{0: 1, 1: 3}, {0: 2}, {}])
        assert merged == {0: 2, 1: 3}

    def test_merge_occupancy_handles_json_string_keys(self):
        # A map that went through json.dumps/loads carries string cell
        # ids; merging it with a native map must not double-count.
        merged = merge_occupancy([{"3": 2, "0": 1}, {3: 5}])
        assert merged == {3: 5, 0: 1}

    def test_normalize_cell_map_round_trip(self):
        import json

        native = {3: 2, 11: 4}
        round_tripped = json.loads(json.dumps(native))
        assert round_tripped != native  # keys stringified
        assert normalize_cell_map(round_tripped) == native

    def test_fleet_result_normalizes_json_keys_on_load(self):
        # Regression: FleetResult occupancy/peak maps rebuilt from a
        # JSON artifact must come back with int cell ids.
        import json

        config = FleetConfig(base=BASE, num_sessions=2)
        result = FleetResult(
            config=config,
            sessions=[],
            occupancy=json.loads(json.dumps({7: 2})),
            peak_occupancy=json.loads(json.dumps({7: 3, 9: 1})),
            congestion_time=[0.0, 0.0],
        )
        assert result.occupancy == {7: 2}
        assert result.peak_occupancy == {7: 3, 9: 1}
        assert result.max_sessions_per_cell == 3
        assert merge_occupancy([result.peak_occupancy, {9: 4}]) == {7: 3, 9: 4}

    def test_fleet_demand_includes_overhead(self):
        assert fleet_demand_bps(4e6, 2e6) == pytest.approx(5e6)
        assert fleet_demand_bps(1e6, 3e6) == pytest.approx(3.75e6)


# ----------------------------------------------------------------------
# fleet engine
# ----------------------------------------------------------------------
def _fingerprint(result):
    return (
        result.packets_sent,
        result.frames_decoded,
        [
            (e.sequence, e.sent_at, e.received_at, e.size_bytes)
            for e in result.packet_log
        ],
        [(r.play_time, r.frame_id) for r in result.playback],
        [
            (e.time, e.source_cell, e.target_cell, e.execution_time)
            for e in result.handovers
        ],
        [
            (s.time, s.uplink_bps, s.downlink_bps, s.serving_cell)
            for s in result.capacity_samples
        ],
    )


class TestRunFleet:
    def test_n1_fleet_bit_identical_to_run_session(self):
        single = run_session(BASE)
        fleet = run_fleet(FleetConfig(base=BASE, num_sessions=1))
        assert len(fleet.sessions) == 1
        assert _fingerprint(fleet.sessions[0]) == _fingerprint(single)
        assert fleet.sessions[0].extra["ping_pong_handovers"] == (
            single.extra["ping_pong_handovers"]
        )
        assert all(
            s.uplink_share == 1.0
            for s in fleet.sessions[0].capacity_samples
        )
        assert fleet.congestion_time == [0.0]

    def test_contended_fleet_degrades_shares(self):
        fleet = run_fleet(
            FleetConfig(base=BASE, num_sessions=3, spread_radius=30.0)
        )
        assert len(fleet.sessions) == 3
        min_share = min(
            s.uplink_share
            for session in fleet.sessions
            for s in session.capacity_samples
        )
        assert min_share < 1.0
        assert fleet.max_sessions_per_cell >= 2
        assert any(t > 0.0 for t in fleet.congestion_time)

    def test_shared_cell_capacity_never_exceeds_budget(self):
        fleet = run_fleet(
            FleetConfig(base=BASE, num_sessions=3, spread_radius=30.0)
        )
        # Group per-tick shares by (time, serving cell) across sessions;
        # in any steady tick the granted shares of co-attached sessions
        # must not oversubscribe the cell's PRB budget.
        by_tick: dict = {}
        for session in fleet.sessions:
            for sample in session.capacity_samples:
                by_tick.setdefault(
                    (round(sample.time, 3), sample.serving_cell), []
                ).append(sample.uplink_share)
        oversubscribed = sum(
            1
            for shares in by_tick.values()
            if len(shares) > 1 and sum(shares) > 1.0 + 1e-9
        )
        shared = sum(1 for shares in by_tick.values() if len(shares) > 1)
        assert shared > 0
        # Attach transitions within a tick may transiently mix old and
        # new allocations (a session samples before a later session
        # hands in); steady ticks must never oversubscribe.
        assert oversubscribed <= 0.05 * shared

    def test_deterministic_repeat(self):
        config = FleetConfig(base=BASE, num_sessions=2, spread_radius=40.0)
        first = run_fleet(config)
        second = run_fleet(config)
        for a, b in zip(first.sessions, second.sessions):
            assert _fingerprint(a) == _fingerprint(b)
        assert first.occupancy == second.occupancy

    def test_session_seeds_follow_stride(self):
        fleet = run_fleet(
            FleetConfig(base=BASE, num_sessions=2, seed_stride=50)
        )
        assert [s.config.seed for s in fleet.sessions] == [7, 57]

    def test_admission_cap_limits_cell_occupancy(self):
        fleet = run_fleet(
            FleetConfig(
                base=BASE,
                num_sessions=4,
                spread_radius=20.0,
                cell_capacity=CellCapacityConfig(max_sessions=2),
            )
        )
        assert fleet.max_sessions_per_cell <= 2

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(base=BASE, num_sessions=0)
        with pytest.raises(ValueError):
            FleetConfig(base=BASE, seed_stride=0)
        with pytest.raises(ValueError):
            FleetConfig(base=BASE, spread_radius=-1.0)

    def test_instrumented_fleet_reports_congestion_cause(self):
        recorder = Recorder()
        fleet = run_fleet(
            FleetConfig(base=BASE, num_sessions=3, spread_radius=30.0),
            recorder=recorder,
        )
        causes = causes_from_trace(recorder.trace)
        congestion = [c for c in causes if c.kind == CELL_CONGESTION]
        assert congestion, "contended fleet should emit cell.congestion spans"
        assert all(0.0 <= c.magnitude <= 1.0 for c in congestion)
        assert "metrics" in fleet.extra
        assert "summary" in fleet.extra["diagnosis"]


# ----------------------------------------------------------------------
# campaign integration + density experiment
# ----------------------------------------------------------------------
class TestFleetCampaign:
    def test_fleet_unit_fingerprint_jsonable(self):
        import json

        unit = fleet_unit(
            BASE,
            num_sessions=4,
            cell_capacity=CellCapacityConfig(max_sessions=2),
            obs=True,
        )
        assert unit.kind == WORK_FLEET
        json.dumps(unit.fingerprint())  # must not raise

    def test_execute_unit_runs_fleet(self):
        quick = BASE.with_overrides(duration=12.0)
        unit = fleet_unit(quick, num_sessions=2, spread_radius=30.0)
        result = execute_unit(unit)
        assert len(result.sessions) == 2

    def test_density_sweep_parallel_equals_serial(self):
        quick = BASE.with_overrides(duration=12.0)
        settings = ExperimentSettings(duration=12.0, seeds=(1,), warmup=2.0)
        serial = run_fleet_density(
            quick, settings, densities=(1, 2), workers=1
        )
        parallel = run_fleet_density(
            quick, settings, densities=(1, 2), workers=2
        )
        for a, b in zip(serial.points, parallel.points):
            assert a == b

    def test_qoe_degrades_monotonically_with_density(self):
        settings = ExperimentSettings(
            duration=60.0, seeds=(1, 2), warmup=10.0
        )
        result = run_fleet_density(
            BASE, settings, densities=(1, 2, 4), spread_radius=30.0
        )
        goodputs = [p.goodput_bps for p in result.points]
        shares = [p.mean_uplink_share for p in result.points]
        congestion = [p.congestion_seconds for p in result.points]
        assert goodputs[0] > goodputs[1] > goodputs[2]
        assert shares[0] >= shares[1] >= shares[2]
        assert shares[0] == pytest.approx(1.0)
        assert congestion[0] == 0.0
        assert congestion[2] > congestion[1] > 0.0
        assert result.points[2].peak_sessions_per_cell >= 3
        assert "fleet" in result.render()

    def test_density_point_fields_finite(self):
        settings = ExperimentSettings(duration=12.0, seeds=(1,), warmup=2.0)
        result = run_fleet_density(BASE, settings, densities=(2,), obs=True)
        point = result.points[0]
        assert point.fleets == 1
        assert point.num_sessions == 2
        assert math.isfinite(point.goodput_bps)
        assert point.congestion_attribution is not None


# ----------------------------------------------------------------------
# observability tiers + sampled member tracing (PR 10)
# ----------------------------------------------------------------------
QUICK_FLEET = BASE.with_overrides(duration=12.0)


class TestFleetObsTiers:
    def test_trace_members_normalized_sorted_deduped(self):
        config = FleetConfig(
            base=QUICK_FLEET, num_sessions=4, trace_members=(3, 1, 3)
        )
        assert config.trace_members == (1, 3)

    def test_trace_members_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(base=QUICK_FLEET, num_sessions=2, trace_members=(2,))
        with pytest.raises(ValueError):
            FleetConfig(base=QUICK_FLEET, num_sessions=2, trace_members=(-1,))

    def test_trace_members_with_trace_level_rejected(self):
        config = FleetConfig(
            base=QUICK_FLEET, num_sessions=2, trace_members=(0,)
        )
        with pytest.raises(ValueError):
            run_fleet(config, obs="trace")
        with pytest.raises(ValueError):
            run_fleet(config, recorder=Recorder())

    def test_off_level_attaches_no_extra(self):
        fleet = run_fleet(FleetConfig(base=QUICK_FLEET, num_sessions=2))
        assert fleet.extra == {}

    def test_metrics_level_carries_plane_and_overhead(self):
        fleet = run_fleet(
            FleetConfig(base=QUICK_FLEET, num_sessions=3, spread_radius=30.0),
            obs="metrics",
        )
        names = {record["name"] for record in fleet.extra["metrics"]}
        assert {
            "fleet/ticks", "fleet/congestion_time", "fleet/uplink_bps",
            "fleet/uplink_share", "fleet/sinr_db", "fleet/occupancy",
        } <= names
        overhead = fleet.extra["obs_overhead"]
        assert overhead["wall_s"] > 0.0
        assert 0.0 <= overhead["share"] < 1.0
        # metrics tier: no trace, so no diagnosis layer
        assert "diagnosis" not in fleet.extra

    def test_metrics_plane_congestion_matches_channel_accounting(self):
        fleet = run_fleet(
            FleetConfig(base=QUICK_FLEET, num_sessions=3, spread_radius=30.0),
            obs="metrics",
        )
        plane = {
            record["labels"]["member"]: record["value"]
            for record in fleet.extra["metrics"]
            if record["name"] == "fleet/congestion_time"
        }
        for member, congestion in enumerate(fleet.congestion_time):
            assert plane[member] == pytest.approx(congestion)

    def test_sampled_member_traces_shape(self):
        fleet = run_fleet(
            FleetConfig(
                base=QUICK_FLEET, num_sessions=3, spread_radius=30.0,
                trace_members=(0, 2),
            )
        )
        assert fleet.extra["trace_members"] == [0, 2]
        traces = fleet.extra["member_traces"]
        assert sorted(traces) == ["0", "2"]
        for member, payload in traces.items():
            assert {"trace", "metrics", "diagnosis"} <= set(payload)
            names = [record["name"] for record in payload["trace"]]
            assert names[0] == "fleet.member_sample"
            marker = payload["trace"][0]["labels"]
            assert marker["member"] == int(member)
            assert payload["metrics"]  # member registry snapshot attached
            assert "summary" in payload["diagnosis"]

    def test_legacy_recorder_still_traces_whole_fleet(self):
        recorder = Recorder()
        fleet = run_fleet(
            FleetConfig(base=QUICK_FLEET, num_sessions=2), recorder=recorder
        )
        assert recorder.trace  # shared-recorder path unchanged
        assert "diagnosis" in fleet.extra

    def test_fleet_unit_obs_levels_land_in_params(self):
        dark = fleet_unit(QUICK_FLEET, num_sessions=2)
        assert "obs" not in dict(dark.params)
        metered = fleet_unit(QUICK_FLEET, num_sessions=2, obs="metrics")
        assert dict(metered.params)["obs"] == "metrics"
        legacy = fleet_unit(QUICK_FLEET, num_sessions=2, obs=True)
        assert dict(legacy.params)["obs"] == "trace"
        sampled = fleet_unit(
            QUICK_FLEET, num_sessions=4, trace_members=(1, 2)
        )
        assert dict(sampled.params)["trace_members"] == (1, 2)
        assert dark.fingerprint() != metered.fingerprint()

    def test_execute_unit_threads_obs_and_trace_members(self):
        unit = fleet_unit(
            QUICK_FLEET, num_sessions=2, obs="metrics", trace_members=(1,)
        )
        result = execute_unit(unit)
        assert result.extra["trace_members"] == [1]
        assert any(
            record["name"] == "fleet/ticks"
            for record in result.extra["metrics"]
        )
