"""Tests for flight and ground trajectories."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flight import (
    CRUISE_SPEED,
    Position,
    WaypointTrajectory,
    ground_trajectory,
    paper_flight_trajectory,
)


class TestPosition:
    def test_horizontal_distance(self):
        a = Position(0, 0, 10)
        b = Position(3, 4, 50)
        assert a.horizontal_distance_to(b) == pytest.approx(5.0)

    def test_3d_distance(self):
        a = Position(0, 0, 0)
        b = Position(3, 4, 12)
        assert a.distance_to(b) == pytest.approx(13.0)


class TestWaypointTrajectory:
    def test_interpolation_midpoint(self):
        traj = WaypointTrajectory(
            [0.0, 10.0], [Position(0, 0, 0), Position(100, 0, 20)]
        )
        mid = traj.position(5.0)
        assert mid.x == pytest.approx(50.0)
        assert mid.altitude == pytest.approx(10.0)

    def test_clamps_outside_range(self):
        traj = WaypointTrajectory(
            [0.0, 10.0], [Position(0, 0, 0), Position(100, 0, 0)]
        )
        assert traj.position(-5.0).x == 0.0
        assert traj.position(50.0).x == 100.0

    def test_speed_reported(self):
        traj = WaypointTrajectory(
            [0.0, 10.0], [Position(0, 0, 0), Position(100, 0, 0)]
        )
        assert traj.position(5.0).speed == pytest.approx(10.0)

    def test_non_monotone_times_rejected(self):
        with pytest.raises(ValueError):
            WaypointTrajectory([0.0, 0.0], [Position(0, 0, 0), Position(1, 0, 0)])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WaypointTrajectory([0.0, 1.0, 2.0], [Position(0, 0, 0)])


class TestVectorizedTrajectory:
    """positions_at/waypoint_key back the channel's geometry cache."""

    def test_positions_at_matches_scalar_position(self):
        traj = paper_flight_trajectory()
        times = np.arange(-2.0, traj.duration + 5.0, 0.37)  # includes clamping
        grid = traj.positions_at(times)
        assert grid.shape == (len(times), 3)
        for t, (x, y, alt) in zip(times, grid):
            p = traj.position(float(t))
            assert x == pytest.approx(p.x, rel=1e-12, abs=1e-9)
            assert y == pytest.approx(p.y, rel=1e-12, abs=1e-9)
            assert alt == pytest.approx(p.altitude, rel=1e-12, abs=1e-9)

    def test_waypoint_key_is_stable_and_discriminating(self):
        a = paper_flight_trajectory()
        b = paper_flight_trajectory()
        c = paper_flight_trajectory(leap_length=150.0)
        assert a.waypoint_key() == b.waypoint_key()
        assert a.waypoint_key() != c.waypoint_key()
        assert hash(a.waypoint_key()) == hash(b.waypoint_key())


class TestPaperFlight:
    def test_duration_about_six_minutes(self):
        traj = paper_flight_trajectory()
        assert 280.0 <= traj.duration <= 450.0

    def test_reaches_all_levels(self):
        traj = paper_flight_trajectory()
        altitudes = [traj.position(t).altitude for t in np.arange(0, traj.duration, 1.0)]
        assert max(altitudes) == pytest.approx(120.0, abs=1.0)
        for level in (40.0, 80.0):
            assert any(abs(a - level) < 1.0 for a in altitudes)

    def test_starts_and_ends_on_ground(self):
        traj = paper_flight_trajectory()
        assert traj.position(0.0).altitude == 0.0
        assert traj.position(traj.duration).altitude == pytest.approx(0.0)

    def test_altitude_never_negative_or_above_limit(self):
        traj = paper_flight_trajectory()
        for t in np.arange(0, traj.duration, 0.5):
            assert -0.1 <= traj.position(t).altitude <= 120.1

    def test_horizontal_leaps_cover_200m(self):
        traj = paper_flight_trajectory(leap_length=200.0)
        xs = [traj.position(t).x for t in np.arange(0, traj.duration, 0.5)]
        assert max(xs) - min(xs) >= 199.0

    def test_speed_within_regulatory_envelope(self):
        traj = paper_flight_trajectory()
        for t in np.arange(0.5, traj.duration, 0.5):
            # max recorded speed in the paper was 60 km/h.
            assert traj.position(t).speed <= 60 / 3.6 + 0.1


class TestGroundTrajectory:
    def test_stays_at_street_level(self):
        traj = ground_trajectory(duration=120.0, rng=np.random.default_rng(1))
        for t in np.arange(0, 120.0, 1.0):
            assert traj.position(t).altitude == pytest.approx(1.5)

    def test_covers_requested_duration(self):
        traj = ground_trajectory(duration=200.0, rng=np.random.default_rng(2))
        assert traj.duration >= 200.0

    def test_includes_idle_periods(self):
        traj = ground_trajectory(
            duration=600.0, idle_fraction=0.5, rng=np.random.default_rng(3)
        )
        speeds = [traj.position(t).speed for t in np.arange(0, 600.0, 1.0)]
        idle = sum(1 for s in speeds if s < 0.01)
        assert idle > 30  # significant stationary time

    def test_rng_is_required(self):
        with pytest.raises(TypeError):
            ground_trajectory(duration=60.0)

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_deterministic_for_seed(self, seed):
        a = ground_trajectory(duration=60.0, rng=np.random.default_rng(seed))
        b = ground_trajectory(duration=60.0, rng=np.random.default_rng(seed))
        for t in (0.0, 10.0, 30.0, 59.0):
            assert a.position(t).x == b.position(t).x
