"""Tests for the command-and-control traffic subsystem."""

import math

import pytest

from repro import ScenarioConfig
from repro.control import (
    COMMAND_RATE_HZ,
    ControlResult,
    run_control_session,
)


@pytest.fixture(scope="module")
def control_with_video():
    return run_control_session(
        ScenarioConfig(cc="static", environment="urban", duration=40.0, seed=9)
    )


@pytest.fixture(scope="module")
def control_only():
    return run_control_session(
        ScenarioConfig(cc="static", environment="urban", duration=40.0, seed=9),
        with_video=False,
    )


class TestControlSession:
    def test_commands_flow_at_configured_rate(self, control_with_video):
        expected = 40.0 * COMMAND_RATE_HZ
        assert control_with_video.commands_sent == pytest.approx(expected, rel=0.05)
        assert len(control_with_video.command_samples) > 0.9 * expected

    def test_command_latency_far_below_video(self, control_with_video):
        """The related-work gap: control signals are an order of
        magnitude faster than the video stream."""
        cmd = control_with_video.command_latency_ms(50)
        video = control_with_video.video_latency_ms(50)
        assert cmd < 60.0
        assert video > 3 * cmd

    def test_telemetry_shares_uplink_with_video(self, control_with_video):
        assert len(control_with_video.telemetry_samples) > 300
        # Telemetry rides the loaded uplink: its tail is worse than
        # the lightly-used downlink commands'.
        assert control_with_video.telemetry_latency_ms(99) >= (
            control_with_video.command_latency_ms(99) * 0.5
        )

    def test_command_loss_negligible(self, control_with_video):
        assert control_with_video.command_loss_rate < 0.01

    def test_without_video_has_no_playback(self, control_only):
        assert control_only.playback == []
        assert math.isnan(control_only.video_latency_ms(50))

    def test_video_load_inflates_telemetry_latency(
        self, control_with_video, control_only
    ):
        loaded = control_with_video.telemetry_latency_ms(95)
        idle = control_only.telemetry_latency_ms(95)
        assert loaded >= idle * 0.8  # never mysteriously better

    def test_render_lists_flows(self, control_with_video):
        text = control_with_video.render()
        assert "command" in text and "telemetry" in text and "video" in text


class TestControlResultEdgeCases:
    def test_empty_result_latencies_nan(self):
        result = ControlResult(
            config=ScenarioConfig(duration=1.0),
            with_video=False,
            command_samples=[],
            telemetry_samples=[],
            commands_sent=0,
            telemetry_sent=0,
        )
        assert math.isnan(result.command_latency_ms())
        assert result.command_loss_rate == 0.0
