"""Unit tests for the sender and receiver pipeline components."""

import pytest

from repro.cc.base import CongestionController, FeedbackKind, StaticBitrateController
from repro.cc.gcc import GccController
from repro.cc.scream import ScreamController
from repro.core.receiver import VideoReceiver
from repro.core.sender import VideoSender
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop
from repro.util.rng import RngStreams
from repro.video.encoder import EncoderModel
from repro.video.source import SourceVideo


def build_pipeline(controller, *, rate=40e6, seed=8):
    loop = EventLoop()
    streams = RngStreams(seed)
    holder = []
    uplink = NetworkPath(
        loop, lambda t: rate, lambda d: holder[0].on_datagram(d),
        base_delay=0.02, jitter_std=0.0,
    )
    downlink = NetworkPath(
        loop, lambda t: rate, lambda d: holder[0].on_feedback_delivered(d),
        base_delay=0.02, jitter_std=0.0,
    )
    source = SourceVideo(streams.derive("src"))
    encoder = EncoderModel(
        streams.derive("enc"), initial_bitrate=controller.target_bitrate(0.0)
    )
    sender = VideoSender(loop, source, encoder, controller, uplink)
    receiver = VideoReceiver(loop, controller, downlink)
    holder.append(receiver)
    return loop, sender, receiver, uplink


class TestVideoSender:
    def test_produces_frames_at_source_rate(self):
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, _ = build_pipeline(controller)
        sender.start()
        loop.run_until(3.0)
        assert sender.stats.frames_encoded == pytest.approx(90, abs=2)

    def test_double_start_rejected(self):
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, _ = build_pipeline(controller)
        sender.start()
        with pytest.raises(RuntimeError):
            sender.start()

    def test_static_sends_everything_immediately(self):
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, _ = build_pipeline(controller)
        sender.start()
        loop.run_until(5.0)
        assert sender.queued_bytes == 0
        assert sender.stats.packets_sent > 300

    def test_stop_halts_encoding(self):
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, _ = build_pipeline(controller)
        sender.start()
        loop.run_until(1.0)
        sender.stop()
        count = sender.stats.frames_encoded
        loop.run_until(3.0)
        assert sender.stats.frames_encoded == count

    def test_stop_cancels_pending_events(self):
        """Teardown leaves no live sender events on the loop (RPL003)."""
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, _ = build_pipeline(controller)
        sender.start()
        loop.run_until(1.0)
        sender.stop()
        receiver.stop()
        sent = sender.stats.packets_sent
        loop.run()  # drains instantly: everything left is cancelled
        assert sender.stats.packets_sent == sent
        assert not sender._pending_events

    def test_scream_queue_discard_on_stall(self):
        """When the network stalls, SCReAM discards its send queue
        after 100 ms instead of building unbounded latency."""
        controller = ScreamController()
        loop, sender, receiver, uplink = build_pipeline(controller)
        sender.start()
        loop.run_until(2.0)
        uplink.set_up(False)  # dead radio: acks stop, cwnd blocks
        loop.run_until(5.0)
        assert sender.stats.queue_discards > 0
        assert sender.stats.packets_discarded > 0

    def test_static_has_no_queue_discards(self):
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, uplink = build_pipeline(controller)
        sender.start()
        uplink.set_up(False)
        loop.run_until(3.0)
        assert sender.stats.queue_discards == 0

    def test_gcc_packets_carry_transport_seq(self):
        controller = GccController()
        loop, sender, receiver, _ = build_pipeline(controller)
        sender.start()
        loop.run_until(1.0)
        assert all(
            e.sequence is not None for e in receiver.packet_log
        )
        # Transport-wide sequence numbers present on the wire.
        assert receiver._twcc is not None


class TestVideoReceiver:
    def test_feedback_generated_for_gcc(self):
        controller = GccController()
        loop, sender, receiver, _ = build_pipeline(controller)
        sender.start()
        receiver.start()
        loop.run_until(3.0)
        assert receiver.feedback_sent > 10

    def test_feedback_interval_matches_controller(self):
        controller = ScreamController()
        loop, sender, receiver, _ = build_pipeline(controller)
        sender.start()
        receiver.start()
        loop.run_until(2.0)
        # ~ (2.0 / 0.08) reports once media flows.
        assert receiver.feedback_sent == pytest.approx(25, abs=6)

    def test_no_feedback_for_static(self):
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, _ = build_pipeline(controller)
        sender.start()
        receiver.start()
        loop.run_until(2.0)
        assert receiver.feedback_sent == 0

    def test_packet_log_grows(self):
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, _ = build_pipeline(controller)
        sender.start()
        loop.run_until(2.0)
        assert len(receiver.packet_log) > 100
        entry = receiver.packet_log[0]
        assert entry.received_at > entry.sent_at

    def test_rejects_non_rtp_payload(self):
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, _ = build_pipeline(controller)
        from repro.net.packet import Datagram

        with pytest.raises(TypeError):
            receiver.on_datagram(Datagram(size_bytes=100, payload="junk"))

    def test_double_start_rejected(self):
        controller = GccController()
        loop, sender, receiver, _ = build_pipeline(controller)
        receiver.start()
        with pytest.raises(RuntimeError):
            receiver.start()

    def test_frames_reach_player(self):
        controller = StaticBitrateController(8e6)
        loop, sender, receiver, _ = build_pipeline(controller)
        sender.start()
        loop.run_until(3.0)
        assert len(receiver.player.records) > 60
        assert receiver.decoder.frames_decoded > 60


class TestControllerDefaults:
    def test_base_controller_interface(self):
        controller = CongestionController(5e6)
        assert controller.target_bitrate(0.0) == 5e6
        assert controller.pacing_rate(0.0) == float("inf")
        assert controller.can_send(10**9, 1200, 0.0)
        assert controller.feedback_kind is FeedbackKind.NONE

    def test_invalid_initial_bitrate(self):
        with pytest.raises(ValueError):
            CongestionController(0.0)
