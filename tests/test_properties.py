"""Cross-cutting property-based tests on system invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ScenarioConfig, run_session
from repro.net.links import CapacityLink
from repro.net.packet import Datagram
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop
from repro.rtp.packetizer import Packetizer
from repro.video.encoder import EncoderModel
from repro.video.frames import EncodedFrame, FrameType
from repro.video.source import SourceVideo
from repro.util.rng import RngStreams


class TestConservationLaws:
    @given(
        sizes=st.lists(st.integers(100, 3000), min_size=1, max_size=50),
        buffer_bytes=st.integers(2000, 50_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_capacity_link_conserves_packets(self, sizes, buffer_bytes):
        loop = EventLoop()
        delivered = []
        link = CapacityLink(
            loop, lambda t: 8e6, delivered.append, buffer_bytes=buffer_bytes
        )
        for size in sizes:
            link.send(Datagram(size_bytes=size, payload=None))
        loop.run()
        assert len(delivered) + link.stats.dropped_overflow == len(sizes)
        assert link.queued_bytes == 0

    @given(
        count=st.integers(1, 80),
        gap_ms=st.floats(0.1, 20.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_path_fifo_and_delay_floor(self, count, gap_ms):
        loop = EventLoop()
        received = []
        rng = np.random.default_rng(0)
        path = NetworkPath(
            loop, lambda t: 20e6, received.append,
            base_delay=0.03, jitter_std=0.002, rng=rng,
        )
        datagrams = [Datagram(size_bytes=500, payload=i) for i in range(count)]
        for i, d in enumerate(datagrams):
            loop.call_at(i * gap_ms / 1e3, lambda d=d: path.send(d))
        loop.run()
        assert [d.payload for d in received] == list(range(count))
        for d in received:
            assert d.one_way_delay >= 0.03

    @given(seed=st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_session_packet_conservation(self, seed):
        result = run_session(
            ScenarioConfig(cc="static", environment="rural", duration=10.0, seed=seed)
        )
        accounted = (
            len(result.packet_log)
            + result.packets_lost_radio
            + result.packets_dropped_buffer
        )
        # A few packets may still be in flight at cut-off.
        assert accounted <= result.packets_sent
        assert result.packets_sent - accounted < 200


class TestEncoderProperties:
    @given(bitrate=st.floats(2e6, 25e6), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_rate_tracks_any_target(self, bitrate, seed):
        encoder = EncoderModel(
            RngStreams(seed).derive("enc"), initial_bitrate=bitrate
        )
        source = SourceVideo(RngStreams(seed).derive("src"))
        frames = [encoder.encode(source.next_frame(i / 30)) for i in range(300)]
        rate = sum(f.size_bytes * 8 for f in frames) / 10.0
        assert rate == pytest.approx(bitrate, rel=0.25)

    @given(
        bitrates=st.lists(st.floats(2e6, 25e6), min_size=2, max_size=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_frame_sizes_positive_through_switches(self, bitrates):
        encoder = EncoderModel(RngStreams(1).derive("enc"), initial_bitrate=2e6)
        source = SourceVideo(RngStreams(1).derive("src"))
        frame_count = 0
        for bitrate in bitrates:
            encoder.set_target_bitrate(bitrate)
            for _ in range(10):
                frame = encoder.encode(source.next_frame(frame_count / 30))
                frame_count += 1
                assert frame.size_bytes > 0


class TestPacketizerProperties:
    @given(
        sizes=st.lists(st.integers(1, 50_000), min_size=1, max_size=30),
        mtu=st.integers(200, 1500),
    )
    @settings(max_examples=40, deadline=None)
    def test_fragmentation_invariants(self, sizes, mtu):
        packetizer = Packetizer(ssrc=1, mtu_payload=mtu)
        prev_seq = None
        for frame_id, size in enumerate(sizes):
            frame = EncodedFrame(
                frame_id=frame_id,
                capture_time=frame_id / 30,
                size_bytes=size,
                frame_type=FrameType.PREDICTED,
                target_bitrate=8e6,
                complexity=1.0,
            )
            packets = packetizer.packetize(frame, frame_id / 30)
            # Exactly one start, one marker; payloads sum to the frame.
            assert sum(p.frame_start for p in packets) == 1
            assert sum(p.marker for p in packets) == 1
            assert sum(p.payload_size for p in packets) == size
            assert all(p.payload_size <= mtu for p in packets)
            # Sequence numbers are globally continuous mod 2^16.
            for p in packets:
                if prev_seq is not None:
                    assert p.sequence == (prev_seq + 1) % (1 << 16)
                prev_seq = p.sequence


class TestDeterminism:
    @given(
        seed=st.integers(0, 30),
        cc=st.sampled_from(["static", "gcc", "scream"]),
    )
    @settings(max_examples=6, deadline=None)
    def test_any_scenario_is_reproducible(self, seed, cc):
        config = ScenarioConfig(cc=cc, environment="urban", duration=8.0, seed=seed)
        a = run_session(config)
        b = run_session(config)
        assert a.packets_sent == b.packets_sent
        assert [e.received_at for e in a.packet_log] == [
            e.received_at for e in b.packet_log
        ]
        assert [r.ssim for r in a.playback] == [r.ssim for r in b.playback]
