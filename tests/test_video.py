"""Tests for the video pipeline: source, encoder, quality, decoder, player."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net.simulator import EventLoop
from repro.rtp.packetizer import AssembledFrame
from repro.rtp.packets import RtpPacket
from repro.video import (
    ArtifactModel,
    DecodedFrame,
    DecoderModel,
    EncoderModel,
    FrameType,
    Player,
    RateDistortionModel,
    SourceVideo,
)
from repro.util.rng import RngStreams


def rng(label="test"):
    return RngStreams(5).derive(label)


class TestSourceVideo:
    def test_frame_ids_monotone(self):
        source = SourceVideo(rng())
        frames = [source.next_frame(i / 30) for i in range(100)]
        assert [f.frame_id for f in frames] == list(range(100))

    def test_complexity_within_bounds(self):
        source = SourceVideo(rng(), min_complexity=0.5, max_complexity=2.0)
        for i in range(2000):
            frame = source.next_frame(i / 30)
            assert 0.5 <= frame.complexity <= 2.0

    def test_complexity_averages_near_one(self):
        source = SourceVideo(rng())
        values = [source.next_frame(i / 30).complexity for i in range(5000)]
        assert np.mean(values) == pytest.approx(1.0, abs=0.25)

    def test_deterministic_for_seed(self):
        a = SourceVideo(RngStreams(9).derive("src"))
        b = SourceVideo(RngStreams(9).derive("src"))
        for i in range(50):
            assert (
                a.next_frame(i / 30).complexity == b.next_frame(i / 30).complexity
            )

    def test_invalid_fps_rejected(self):
        with pytest.raises(ValueError):
            SourceVideo(rng(), fps=0)


class TestEncoderModel:
    def encode_n(self, encoder, source, n):
        return [encoder.encode(source.next_frame(i / 30)) for i in range(n)]

    def test_long_run_rate_tracks_target(self):
        encoder = EncoderModel(rng("enc"), initial_bitrate=8e6)
        source = SourceVideo(rng("src"))
        frames = self.encode_n(encoder, source, 600)  # 20 s
        total_bits = sum(f.size_bytes * 8 for f in frames)
        rate = total_bits / (len(frames) / 30.0)
        assert rate == pytest.approx(8e6, rel=0.15)

    def test_gop_structure(self):
        encoder = EncoderModel(rng("enc"), gop_length=30, initial_bitrate=8e6)
        source = SourceVideo(rng("src"))
        frames = self.encode_n(encoder, source, 90)
        idr_positions = [i for i, f in enumerate(frames) if f.is_keyframe]
        assert idr_positions == [0, 30, 60]

    def test_idr_larger_than_p_frames(self):
        encoder = EncoderModel(rng("enc"), initial_bitrate=8e6, idr_ratio=2.0)
        source = SourceVideo(rng("src"))
        frames = self.encode_n(encoder, source, 120)
        idr_sizes = [f.size_bytes for f in frames if f.is_keyframe]
        p_sizes = [f.size_bytes for f in frames if not f.is_keyframe]
        assert np.mean(idr_sizes) > 1.4 * np.mean(p_sizes)

    def test_target_change_applies_to_next_frame(self):
        encoder = EncoderModel(rng("enc"), initial_bitrate=4e6)
        source = SourceVideo(rng("src"))
        self.encode_n(encoder, source, 30)
        encoder.set_target_bitrate(16e6)
        frame = encoder.encode(source.next_frame(2.0))
        assert frame.target_bitrate == 16e6

    def test_target_clamped_to_range(self):
        encoder = EncoderModel(
            rng("enc"), min_bitrate=2e6, max_bitrate=25e6, initial_bitrate=8e6
        )
        encoder.set_target_bitrate(100e6)
        assert encoder.target_bitrate == 25e6
        encoder.set_target_bitrate(0.1e6)
        assert encoder.target_bitrate == 2e6

    def test_encode_latency_positive_and_small(self):
        encoder = EncoderModel(rng("enc"), initial_bitrate=8e6)
        source = SourceVideo(rng("src"))
        for frame in self.encode_n(encoder, source, 60):
            assert 0.0 < frame.encode_latency < 0.05

    def test_invalid_gop_rejected(self):
        with pytest.raises(ValueError):
            EncoderModel(rng(), gop_length=1)

    def test_idr_ratio_too_large_rejected(self):
        with pytest.raises(ValueError):
            EncoderModel(rng(), gop_length=4, idr_ratio=5.0)


class TestRateDistortion:
    def test_monotone_in_bitrate(self):
        model = RateDistortionModel()
        ssims = [model.clean_ssim(r * 1e6) for r in (2, 5, 8, 15, 25)]
        assert ssims == sorted(ssims)

    def test_calibration_anchors(self):
        model = RateDistortionModel()
        # 25 Mbps full-HD should look very good, 8 Mbps good, 2 Mbps fair.
        assert model.clean_ssim(25e6) > 0.93
        assert 0.85 < model.clean_ssim(8e6) < 0.97
        assert 0.6 < model.clean_ssim(2e6) < 0.9

    def test_zero_bitrate_scores_zero(self):
        assert RateDistortionModel().clean_ssim(0.0) == 0.0

    def test_complexity_lowers_quality(self):
        model = RateDistortionModel()
        assert model.clean_ssim(8e6, complexity=2.0) < model.clean_ssim(
            8e6, complexity=1.0
        )

    @given(st.floats(1e5, 50e6), st.floats(0.5, 2.0))
    def test_ssim_in_unit_interval(self, bitrate, complexity):
        value = RateDistortionModel().clean_ssim(bitrate, complexity)
        assert 0.0 <= value <= 1.0


class TestArtifactModel:
    def test_no_loss_no_damage(self):
        assert ArtifactModel().frame_damage(0.0) == 0.0

    def test_damage_monotone_in_loss(self):
        model = ArtifactModel()
        damages = [model.frame_damage(f) for f in (0.05, 0.2, 0.5, 1.0)]
        assert damages == sorted(damages)
        assert damages[-1] <= model.max_damage

    def test_propagation_decays(self):
        model = ArtifactModel(propagation_decay=0.9)
        assert model.propagate(0.5) == pytest.approx(0.45)

    def test_apply_scales_ssim(self):
        model = ArtifactModel()
        assert model.apply(0.9, 0.5) == pytest.approx(0.45)


def make_assembled(frame_id, *, complete=True, frame_type=FrameType.PREDICTED,
                   bitrate=8e6, expected=3):
    received = expected if complete else expected - 1
    packet = RtpPacket(
        ssrc=1,
        sequence=frame_id * 10 % (1 << 16),
        timestamp=0,
        payload_size=1200,
        frame_id=frame_id,
        metadata={
            "frame_type": frame_type,
            "target_bitrate": bitrate,
            "complexity": 1.0,
        },
    )
    return AssembledFrame(
        frame_id=frame_id,
        encode_time=frame_id / 30.0,
        first_arrival=frame_id / 30.0 + 0.05,
        last_arrival=frame_id / 30.0 + 0.06,
        received_packets=received,
        expected_packets=expected,
        received_bytes=received * 1200,
        packets=[packet],
    )


class TestDecoderModel:
    def test_clean_frames_score_high(self):
        decoder = DecoderModel()
        frame = decoder.decode(make_assembled(0, frame_type=FrameType.IDR), 0.1)
        assert frame.ssim > 0.85
        assert frame.complete

    def test_damage_propagates_until_idr(self):
        decoder = DecoderModel()
        decoder.decode(make_assembled(0, frame_type=FrameType.IDR), 0.0)
        damaged = decoder.decode(make_assembled(1, complete=False), 0.03)
        after = decoder.decode(make_assembled(2), 0.06)
        # The (complete) P frame after the damaged one still shows
        # artifacts because its reference picture is damaged.
        assert damaged.ssim < 0.5
        assert after.ssim < 0.5
        # A clean IDR resets the reference.
        recovered = decoder.decode(
            make_assembled(3, frame_type=FrameType.IDR), 0.09
        )
        assert recovered.ssim > 0.85

    def test_damaged_frame_counted(self):
        decoder = DecoderModel()
        decoder.decode(make_assembled(0, complete=False), 0.0)
        assert decoder.damaged_frames == 1


class TestPlayer:
    def make_frame(self, frame_id, encode_time=None):
        return DecodedFrame(
            frame_id=frame_id,
            ssim=0.9,
            complete=True,
            decode_time=0.0,
            encode_time=encode_time if encode_time is not None else frame_id / 30.0,
        )

    def test_plays_frames_in_order(self):
        loop = EventLoop()
        player = Player(loop)
        for i in range(10):
            loop.call_at(i / 30.0 + 0.2, lambda i=i: player.push(self.make_frame(i)))
        loop.run()
        assert [r.frame_id for r in player.records] == list(range(10))

    def test_playback_latency_recorded(self):
        loop = EventLoop()
        player = Player(loop)
        loop.call_at(0.25, lambda: player.push(self.make_frame(0, encode_time=0.0)))
        loop.run()
        assert player.records[0].playback_latency == pytest.approx(0.25)

    def test_underrun_then_resume(self):
        loop = EventLoop()
        player = Player(loop)
        loop.call_at(0.1, lambda: player.push(self.make_frame(0)))
        # Long gap: player goes idle, then resumes immediately on push.
        loop.call_at(1.0, lambda: player.push(self.make_frame(1)))
        loop.run()
        assert player.records[1].play_time == pytest.approx(1.0)

    def test_late_frame_dropped(self):
        loop = EventLoop()
        player = Player(loop)
        loop.call_at(0.1, lambda: player.push(self.make_frame(5)))
        loop.call_at(0.5, lambda: player.push(self.make_frame(3)))
        loop.run()
        assert player.late_frames == 1
        assert [r.frame_id for r in player.records] == [5]

    def test_backlog_played_faster(self):
        loop = EventLoop()
        player = Player(loop, fps=30.0, high_watermark=2, speedup=0.5)
        # 20 frames arrive at once.
        loop.call_at(0.1, lambda: [player.push(self.make_frame(i)) for i in range(20)])
        loop.run_until(1.0)
        gaps = [
            b.play_time - a.play_time
            for a, b in zip(player.records, player.records[1:])
        ]
        assert min(gaps) < 1.0 / 30

    def test_max_queue_skips_oldest(self):
        loop = EventLoop()
        player = Player(loop, max_queue=5)
        loop.call_at(
            0.1, lambda: [player.push(self.make_frame(i)) for i in range(10)]
        )
        loop.run_until(0.2)
        assert player.skipped_frames > 0

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(ValueError):
            Player(EventLoop(), low_watermark=3, high_watermark=2)

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=30))
    @settings(max_examples=20, deadline=None)
    def test_property_played_ids_strictly_increasing(self, arrival_gaps):
        loop = EventLoop()
        player = Player(loop)
        t = 0.0
        for i, gap in enumerate(arrival_gaps):
            t += gap / 1000.0
            loop.call_at(t, lambda i=i: player.push(self.make_frame(i)))
        loop.run()
        ids = [r.frame_id for r in player.records]
        assert ids == sorted(set(ids))
