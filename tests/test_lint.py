"""Tests for the repro.lint invariant linter.

Each rule gets a paired fixture: a snippet seeded with the violation
the rule exists to catch, and the corrected form that must stay
silent. The pragma, walker and CLI behaviour are covered separately.
"""

import textwrap

import pytest

from repro.lint import ALL_RULES, Finding, PragmaIndex, lint_file, lint_paths, lint_source
from repro.lint.runner import iter_python_files, run_cli


def ids_of(findings):
    return [f.rule_id for f in findings]


def lint(snippet, path="sim/module.py", rules=None):
    return lint_source(textwrap.dedent(snippet), path, rules)


# ----------------------------------------------------------------------
# RPL001 — nondeterminism
# ----------------------------------------------------------------------


class TestNondeterminism:
    def test_stdlib_random_fires(self):
        findings = lint(
            """
            import random

            def draw():
                return random.random()
            """
        )
        assert ids_of(findings) == ["RPL001"]

    def test_numpy_global_rng_fires(self):
        findings = lint(
            """
            import numpy as np

            def draw():
                np.random.seed(3)
                return np.random.normal(0.0, 1.0)
            """
        )
        assert ids_of(findings) == ["RPL001", "RPL001"]

    def test_unseeded_default_rng_fires(self):
        findings = lint(
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """
        )
        assert ids_of(findings) == ["RPL001"]

    def test_wall_clock_fires(self):
        findings = lint(
            """
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """
        )
        assert ids_of(findings) == ["RPL001", "RPL001"]

    def test_os_entropy_fires(self):
        findings = lint(
            """
            import os, uuid

            def token():
                return os.urandom(8), uuid.uuid4()
            """
        )
        assert ids_of(findings) == ["RPL001", "RPL001"]

    def test_seeded_generator_is_silent(self):
        findings = lint(
            """
            import numpy as np

            def make(streams):
                rng = streams.derive("fading")
                seq = np.random.SeedSequence([1, 2])
                return rng.normal(0.0, 1.0), np.random.default_rng(seq)
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL002 — unit-suffix safety
# ----------------------------------------------------------------------


class TestUnitSafety:
    def test_magic_constant_arithmetic_fires(self):
        findings = lint(
            """
            def convert(delay, rate, size_bytes):
                delay_ms = delay * 1000
                rate_mbps = rate / 1e6
                bits = size_bytes * 8.0
                return delay_ms, rate_mbps, bits
            """
        )
        assert ids_of(findings) == ["RPL002", "RPL002", "RPL002"]

    def test_suffix_mismatch_assignment_fires(self):
        findings = lint(
            """
            def relabel(timeout_s):
                timeout_ms = timeout_s
                return timeout_ms
            """
        )
        assert ids_of(findings) == ["RPL002"]

    def test_suffix_mismatch_keyword_fires(self):
        findings = lint(
            """
            def call(configure, budget_bits):
                configure(budget_bytes=budget_bits)
            """
        )
        assert ids_of(findings) == ["RPL002"]

    def test_units_helpers_are_silent(self):
        findings = lint(
            """
            from repro.util.units import bytes_to_bits, to_mbps, to_ms

            def convert(delay, rate, size_bytes):
                delay_ms = to_ms(delay)
                rate_mbps = to_mbps(rate)
                return delay_ms, rate_mbps, bytes_to_bits(size_bytes)
            """
        )
        assert findings == []

    def test_same_unit_flow_is_silent(self):
        findings = lint(
            """
            def keep(owd_ms):
                latency_ms = owd_ms
                return latency_ms
            """
        )
        assert findings == []

    def test_integer_eight_and_epsilons_are_silent(self):
        findings = lint(
            """
            def harmless(x):
                return x * 8, x + 1e-3, x * 1e-6
            """
        )
        assert findings == []

    def test_units_module_itself_is_exempt(self):
        findings = lint(
            """
            def to_ms(seconds):
                return seconds * 1e3
            """,
            path="src/repro/util/units.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL003 — event-handle leaks
# ----------------------------------------------------------------------

_LEAKY_CLASS = """
class Pump:
    def __init__(self, loop):
        self._loop = loop

    def kick(self):
        self._loop.call_later(0.002, self.kick)

    def stop(self):
        pass
"""

_CLEAN_CLASS = """
class Pump:
    def __init__(self, loop):
        self._loop = loop
        self._pending = set()

    def kick(self):
        handle = self._loop.call_later(0.002, self.kick)
        self._pending.add(handle)

    def stop(self):
        for handle in self._pending:
            handle.cancel()
        self._pending.clear()
"""


class TestEventHandle:
    def test_discarded_handle_with_teardown_fires(self):
        assert ids_of(lint(_LEAKY_CLASS)) == ["RPL003"]

    def test_kept_handle_is_silent(self):
        assert lint(_CLEAN_CLASS) == []

    def test_class_without_teardown_is_silent(self):
        findings = lint(
            """
            class FireAndForget:
                def __init__(self, loop):
                    self._loop = loop

                def kick(self):
                    self._loop.call_later(0.002, self.kick)
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL004 — picklability
# ----------------------------------------------------------------------


class TestPicklability:
    def test_lambda_to_pool_fires(self):
        findings = lint(
            """
            def fan_out(pool, items):
                return pool.imap_unordered(lambda x: x * 2, items)
            """
        )
        assert ids_of(findings) == ["RPL004"]

    def test_nested_function_to_pool_fires(self):
        findings = lint(
            """
            def fan_out(pool, items):
                def work(x):
                    return x * 2

                return list(pool.map(work, items))
            """
        )
        assert ids_of(findings) == ["RPL004"]

    def test_lambda_process_target_fires(self):
        findings = lint(
            """
            from multiprocessing import Process

            def spawn():
                return Process(target=lambda: None)
            """
        )
        assert ids_of(findings) == ["RPL004"]

    def test_module_level_function_is_silent(self):
        findings = lint(
            """
            def work(x):
                return x * 2

            def fan_out(pool, items):
                return pool.imap_unordered(work, items)
            """
        )
        assert findings == []

    def test_builtin_map_is_silent(self):
        findings = lint(
            """
            def squares(items):
                return list(map(lambda x: x * x, items))
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL005 — seed-path hygiene
# ----------------------------------------------------------------------


class TestSeedHygiene:
    def test_hardcoded_seed_fallback_fires(self):
        findings = lint(
            """
            import numpy as np

            def ensure(rng):
                if rng is None:
                    rng = np.random.default_rng(0)
                return rng
            """
        )
        assert ids_of(findings) == ["RPL005"]

    def test_legacy_randomstate_literal_fires(self):
        findings = lint(
            """
            import numpy as np

            def make():
                return np.random.RandomState(42)
            """
        )
        assert ids_of(findings) == ["RPL005"]

    def test_variable_seed_is_silent(self):
        findings = lint(
            """
            import numpy as np

            def make(seed_sequence):
                return np.random.default_rng(seed_sequence)
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# RPL006 — hot-path dataclass slots
# ----------------------------------------------------------------------


PLAIN_DATACLASS = """
from dataclasses import dataclass

@dataclass
class Packet:
    seq: int
    size_bytes: int
"""


class TestHotPathSlots:
    @pytest.mark.parametrize(
        "path",
        [
            "src/repro/net/packet.py",
            "src/repro/rtp/packets.py",
            "src/repro/cc/base.py",
        ],
    )
    def test_plain_dataclass_in_hot_module_fires(self, path):
        findings = lint(PLAIN_DATACLASS, path=path)
        assert ids_of(findings) == ["RPL006"]
        assert "slots" in findings[0].message

    def test_slots_true_is_silent(self):
        findings = lint(
            """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Packet:
                seq: int
            """,
            path="src/repro/net/packet.py",
        )
        assert findings == []

    def test_manual_slots_is_silent(self):
        findings = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class Packet:
                __slots__ = ("seq",)
                seq: int
            """,
            path="src/repro/net/packet.py",
        )
        assert findings == []

    def test_plain_class_is_silent(self):
        findings = lint(
            """
            class Packet:
                def __init__(self, seq):
                    self.seq = seq
            """,
            path="src/repro/net/packet.py",
        )
        assert findings == []

    def test_cold_modules_are_exempt(self):
        """Analysis/experiment dataclasses are allocated a handful of
        times per run; forcing slots there would be noise."""
        for path in ("src/repro/analysis/metrics.py", "sim/module.py"):
            assert lint(PLAIN_DATACLASS, path=path) == []

    def test_decorator_call_without_slots_fires(self):
        findings = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Packet:
                seq: int
            """,
            path="src/repro/cc/base.py",
        )
        assert ids_of(findings) == ["RPL006"]


# ----------------------------------------------------------------------
# pragmas
# ----------------------------------------------------------------------


class TestPragmas:
    def test_targeted_ignore_suppresses_only_that_rule(self):
        findings = lint(
            """
            import random

            def draw():
                return random.random()  # repro-lint: ignore[RPL001]
            """
        )
        assert findings == []

    def test_targeted_ignore_leaves_other_rules(self):
        findings = lint(
            """
            def convert(delay):
                return delay * 1000  # repro-lint: ignore[RPL001]
            """
        )
        assert ids_of(findings) == ["RPL002"]

    def test_bare_ignore_suppresses_all_rules_on_line(self):
        findings = lint(
            """
            import random

            def draw(delay):
                return random.random() * 1000  # repro-lint: ignore
            """
        )
        assert findings == []

    def test_skip_file_suppresses_everything(self):
        findings = lint(
            """
            # repro-lint: skip-file
            import random

            def draw():
                return random.random()
            """
        )
        assert findings == []

    def test_pragma_inside_string_is_inert(self):
        source = textwrap.dedent(
            """
            import random

            TEXT = "# repro-lint: skip-file"

            def draw():
                return random.random()
            """
        )
        assert ids_of(lint_source(source, "sim/module.py")) == ["RPL001"]
        assert PragmaIndex(source).skip_file is False


# ----------------------------------------------------------------------
# runner / walker / CLI
# ----------------------------------------------------------------------


class TestRunner:
    def test_syntax_error_becomes_rpl000(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert ids_of(findings) == ["RPL000"]
        assert "syntax error" in findings[0].message

    def test_findings_render_and_sort(self):
        finding = Finding(path="a.py", line=3, col=7, rule_id="RPL001", message="boom")
        assert finding.render() == "a.py:3:7: RPL001 boom"
        later = Finding(path="a.py", line=9, col=1, rule_id="RPL001", message="boom")
        assert sorted([later, finding]) == [finding, later]

    def test_walker_skips_cache_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "notes.txt").write_text("not python\n")
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["good.py"]

    def test_lint_paths_aggregates(self, tmp_path):
        (tmp_path / "one.py").write_text("import random\nrandom.random()\n")
        (tmp_path / "two.py").write_text("x = 1\n")
        findings = lint_paths([tmp_path])
        assert ids_of(findings) == ["RPL001"]
        assert lint_file(tmp_path / "two.py") == []

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nrandom.random()\n")
        assert run_cli([str(bad)]) == 1
        assert "RPL001" in capsys.readouterr().out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert run_cli([str(good)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_cli_select_filters_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nrandom.random()\n")
        assert run_cli([str(bad), "--select", "RPL002"]) == 0
        capsys.readouterr()

    def test_cli_rejects_unknown_rule(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            run_cli([str(tmp_path), "--select", "RPL999"])
        capsys.readouterr()

    def test_cli_list_rules(self, capsys):
        assert run_cli(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_cls in ALL_RULES:
            assert rule_cls.rule_id in out

    def test_repo_is_clean(self):
        """The shipped tree satisfies its own invariants."""
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        targets = [root / name for name in ("src", "tools", "examples")]
        findings = lint_paths([t for t in targets if t.exists()])
        assert findings == [], "\n".join(f.render() for f in findings)
