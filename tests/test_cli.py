"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.cc == "static"
        assert args.environment == "urban"

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "--cc", "scream", "--environment", "rural", "--seed", "9"]
        )
        assert args.cc == "scream" and args.seed == 9

    def test_invalid_cc_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--cc", "bogus"])

    def test_figure_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_figures(self, capsys):
        assert main(["list-figures"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_unknown_figure_errors(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().out

    def test_run_prints_summary(self, capsys):
        code = main(["run", "--duration", "15", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "playback latency" in out

    def test_dataset_exports(self, capsys, tmp_path):
        code = main(
            [
                "dataset",
                "--out", str(tmp_path / "ds"),
                "--environments", "urban",
                "--methods", "static",
                "--duration", "10",
                "--seeds", "1",
            ]
        )
        assert code == 0
        assert (tmp_path / "ds" / "static-urban-air-P1-s1" / "meta.json").exists()

    def test_every_figure_name_resolves(self):
        import repro.experiments as experiments

        for runner_name, _ in FIGURES.values():
            assert hasattr(experiments, runner_name), runner_name


class TestRunnerFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["figure", "fig6"])
        assert args.workers == 1
        assert args.no_cache is False
        assert args.cache_dir == ".repro-cache"

    def test_overrides(self):
        args = build_parser().parse_args(
            ["dataset", "--workers", "4", "--no-cache", "--cache-dir", "/tmp/c"]
        )
        assert args.workers == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/c"

    def test_help_mentions_workers_and_cache(self, capsys):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "--help"])
        out = capsys.readouterr().out
        assert "--workers" in out
        assert "--no-cache" in out

    def test_dataset_uses_cache_dir(self, capsys, tmp_path):
        argv = [
            "dataset",
            "--out", str(tmp_path / "ds"),
            "--environments", "urban",
            "--methods", "static",
            "--duration", "10",
            "--seeds", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert "0 cached, 1 executed" in capsys.readouterr().out
        # Second invocation is served entirely from the cache.
        assert main(argv) == 0
        assert "1 cached, 0 executed" in capsys.readouterr().out

    def test_figure_accepts_runner_flags(self, capsys, tmp_path):
        code = main(
            [
                "figure", "fig13",
                "--duration", "40",
                "--seeds", "1",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig 13" in out
        assert "executed" in out


class TestProfile:
    def test_defaults_target_headline_session(self):
        args = build_parser().parse_args(["profile"])
        assert args.target == "session"
        assert args.cc == "gcc"
        assert args.duration == 60.0
        assert args.engine == "auto"
        assert args.sort == "cumulative"
        assert args.out == "profiles"

    def test_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--engine", "perf"])

    def test_session_profile_writes_report(self, capsys, tmp_path):
        code = main(
            [
                "profile",
                "--duration", "5",
                "--seed", "2",
                "--engine", "cprofile",
                "--top", "10",
                "--out", str(tmp_path / "prof"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wall time" in out
        written = sorted(p.name for p in (tmp_path / "prof").iterdir())
        assert written == [
            "session-gcc-urban-air-P1-s2.json",
            "session-gcc-urban-air-P1-s2.txt",
        ]

    def test_profile_json_summary_schema(self, tmp_path):
        import json

        assert main(
            [
                "profile",
                "--duration", "5",
                "--engine", "cprofile",
                "--out", str(tmp_path),
            ]
        ) == 0
        (json_path,) = tmp_path.glob("*.json")
        summary = json.loads(json_path.read_text())
        assert summary["schema"] == 1
        assert summary["engine"] == "cprofile"
        assert summary["wall_time_s"] > 0
        rows = summary["top"]
        assert 0 < len(rows) <= 30
        assert {"function", "file", "line", "calls", "tottime_s", "cumtime_s"} <= set(
            rows[0]
        )

    def test_unknown_profile_target_errors(self, capsys):
        assert main(["profile", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().out

    def test_fleet_profile_writes_report(self, capsys, tmp_path):
        code = main(
            [
                "profile",
                "--fleet", "2",
                "--cc", "static",
                "--duration", "5",
                "--seed", "3",
                "--engine", "cprofile",
                "--out", str(tmp_path / "prof"),
            ]
        )
        assert code == 0
        assert "wall time" in capsys.readouterr().out
        written = sorted(p.name for p in (tmp_path / "prof").iterdir())
        assert written == [
            "fleet2-static-urban-air-P1-s3.json",
            "fleet2-static-urban-air-P1-s3.txt",
        ]


class TestTrace:
    def test_defaults_target_gcc_minute(self):
        args = build_parser().parse_args(["trace"])
        assert args.cc == "gcc"
        assert args.duration == 60.0
        assert args.component == [] and args.input == []

    def test_traced_run_prints_timeline(self, capsys):
        code = main(["trace", "--duration", "20", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "t (s)" in out
        assert "component" in out

    def test_component_and_window_filters(self, capsys):
        code = main(
            [
                "trace", "--duration", "20", "--seed", "1",
                "--component", "gcc,handover",
                "--t0", "5", "--t1", "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for line in out.splitlines()[2:]:
            if "·" in line or "▶" in line:
                assert " gcc " in line or " handover " in line

    def test_metrics_flag_prints_registry(self, capsys):
        code = main(["trace", "--duration", "20", "--seed", "1", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sender/packets_sent" in out

    def test_export_then_merge_inputs(self, capsys, tmp_path):
        first = tmp_path / "s1.jsonl"
        second = tmp_path / "s2.jsonl"
        assert main(
            ["trace", "--duration", "15", "--seed", "1", "--out", str(first)]
        ) == 0
        assert main(
            ["trace", "--duration", "15", "--seed", "2", "--out", str(second)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["trace", "--input", str(first), "--input", str(second), "--metrics"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "t (s)" in out
        # Metrics from both runs merged: counters sum across inputs.
        assert "sender/packets_sent" in out

    def test_json_format_emits_jsonl_records(self, capsys):
        code = main(
            ["trace", "--duration", "15", "--seed", "1", "--format", "json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.splitlines()]
        assert records, "expected at least one JSONL record"
        assert {record["type"] for record in records} <= {"event", "span"}
        assert any(record["name"] == "session.config" for record in records)

    def test_json_format_with_metrics_appends_metric_lines(self, capsys):
        code = main(
            [
                "trace", "--duration", "15", "--seed", "1",
                "--format", "json", "--metrics",
            ]
        )
        assert code == 0
        types = [
            json.loads(line)["type"]
            for line in capsys.readouterr().out.splitlines()
        ]
        assert "metric" in types
        # Trace records come first, the metric snapshot last.
        assert types.index("metric") > types.count("metric") - 1

    def test_json_format_matches_out_file(self, capsys, tmp_path):
        out_file = tmp_path / "run.jsonl"
        code = main(
            [
                "trace", "--duration", "15", "--seed", "1",
                "--format", "json", "--metrics", "--out", str(out_file),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert printed == out_file.read_text()


class TestDiagnose:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["diagnose"])
        assert args.cc == "gcc"
        assert args.duration == 60.0
        assert args.format == "text"
        assert args.warmup == 5.0
        assert args.lag_horizon == 2.0

    def test_acceptance_handover_ranked_first(self, capsys):
        """The issue's end-to-end criterion: a seeded GCC session whose
        playback-latency violation is attributed to handover, straight
        from the CLI."""
        code = main(["diagnose", "--cc", "gcc", "--duration", "60", "--seed", "1"])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        violation_index = next(
            i for i, line in enumerate(lines)
            if "playback_latency:" in line
        )
        # The line right below the violation is its top-ranked cause.
        top_cause = lines[violation_index + 1]
        assert top_cause.startswith("    ")
        assert "handover" in top_cause

    def test_json_output_validates(self, capsys, tmp_path):
        json_out = tmp_path / "diagnosis.json"
        code = main(
            [
                "diagnose", "--duration", "20", "--seed", "2",
                "--format", "json", "--json-out", str(json_out),
            ]
        )
        assert code == 0
        from repro.obs import validate_diagnosis

        printed = json.loads(capsys.readouterr().out)
        assert validate_diagnosis(printed) == []
        assert json.loads(json_out.read_text()) == printed

    def test_markdown_format(self, capsys):
        code = main(
            ["diagnose", "--duration", "20", "--seed", "2", "--format", "markdown"]
        )
        assert code == 0
        assert "| SLO | signal |" in capsys.readouterr().out

    def test_input_roundtrip_from_trace_export(self, capsys, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        assert main(
            [
                "trace", "--cc", "gcc", "--duration", "20", "--seed", "2",
                "--out", str(trace_file),
            ]
        ) == 0
        capsys.readouterr()
        live = main(
            ["diagnose", "--duration", "20", "--seed", "2", "--format", "json"]
        )
        assert live == 0
        live_payload = json.loads(capsys.readouterr().out)
        assert main(
            ["diagnose", "--input", str(trace_file), "--format", "json"]
        ) == 0
        replayed = json.loads(capsys.readouterr().out)
        assert replayed == live_payload
