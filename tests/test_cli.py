"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.cc == "static"
        assert args.environment == "urban"

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "--cc", "scream", "--environment", "rural", "--seed", "9"]
        )
        assert args.cc == "scream" and args.seed == 9

    def test_invalid_cc_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--cc", "bogus"])

    def test_figure_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list_figures(self, capsys):
        assert main(["list-figures"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_unknown_figure_errors(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().out

    def test_run_prints_summary(self, capsys):
        code = main(["run", "--duration", "15", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput" in out
        assert "playback latency" in out

    def test_dataset_exports(self, capsys, tmp_path):
        code = main(
            [
                "dataset",
                "--out", str(tmp_path / "ds"),
                "--environments", "urban",
                "--methods", "static",
                "--duration", "10",
                "--seeds", "1",
            ]
        )
        assert code == 0
        assert (tmp_path / "ds" / "static-urban-air-P1-s1" / "meta.json").exists()

    def test_every_figure_name_resolves(self):
        import repro.experiments as experiments

        for runner_name, _ in FIGURES.values():
            assert hasattr(experiments, runner_name), runner_name


class TestRunnerFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["figure", "fig6"])
        assert args.workers == 1
        assert args.no_cache is False
        assert args.cache_dir == ".repro-cache"

    def test_overrides(self):
        args = build_parser().parse_args(
            ["dataset", "--workers", "4", "--no-cache", "--cache-dir", "/tmp/c"]
        )
        assert args.workers == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/c"

    def test_help_mentions_workers_and_cache(self, capsys):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "--help"])
        out = capsys.readouterr().out
        assert "--workers" in out
        assert "--no-cache" in out

    def test_dataset_uses_cache_dir(self, capsys, tmp_path):
        argv = [
            "dataset",
            "--out", str(tmp_path / "ds"),
            "--environments", "urban",
            "--methods", "static",
            "--duration", "10",
            "--seeds", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        assert "0 cached, 1 executed" in capsys.readouterr().out
        # Second invocation is served entirely from the cache.
        assert main(argv) == 0
        assert "1 cached, 0 executed" in capsys.readouterr().out

    def test_figure_accepts_runner_flags(self, capsys, tmp_path):
        code = main(
            [
                "figure", "fig13",
                "--duration", "40",
                "--seeds", "1",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig 13" in out
        assert "executed" in out


class TestProfile:
    def test_defaults_target_headline_session(self):
        args = build_parser().parse_args(["profile"])
        assert args.target == "session"
        assert args.cc == "gcc"
        assert args.duration == 60.0
        assert args.engine == "auto"
        assert args.sort == "cumulative"
        assert args.out == "profiles"

    def test_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "--engine", "perf"])

    def test_session_profile_writes_report(self, capsys, tmp_path):
        code = main(
            [
                "profile",
                "--duration", "5",
                "--seed", "2",
                "--engine", "cprofile",
                "--top", "10",
                "--out", str(tmp_path / "prof"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wall time" in out
        written = sorted(p.name for p in (tmp_path / "prof").iterdir())
        assert written == [
            "session-gcc-urban-air-P1-s2.json",
            "session-gcc-urban-air-P1-s2.txt",
        ]

    def test_profile_json_summary_schema(self, tmp_path):
        import json

        assert main(
            [
                "profile",
                "--duration", "5",
                "--engine", "cprofile",
                "--out", str(tmp_path),
            ]
        ) == 0
        (json_path,) = tmp_path.glob("*.json")
        summary = json.loads(json_path.read_text())
        assert summary["schema"] == 1
        assert summary["engine"] == "cprofile"
        assert summary["wall_time_s"] > 0
        rows = summary["top"]
        assert 0 < len(rows) <= 30
        assert {"function", "file", "line", "calls", "tottime_s", "cumtime_s"} <= set(
            rows[0]
        )

    def test_unknown_profile_target_errors(self, capsys):
        assert main(["profile", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().out

    def test_fleet_profile_writes_report(self, capsys, tmp_path):
        code = main(
            [
                "profile",
                "--fleet", "2",
                "--cc", "static",
                "--duration", "5",
                "--seed", "3",
                "--engine", "cprofile",
                "--out", str(tmp_path / "prof"),
            ]
        )
        assert code == 0
        assert "wall time" in capsys.readouterr().out
        written = sorted(p.name for p in (tmp_path / "prof").iterdir())
        assert written == [
            "fleet2-static-urban-air-P1-s3.json",
            "fleet2-static-urban-air-P1-s3.txt",
        ]


class TestTrace:
    def test_defaults_target_gcc_minute(self):
        args = build_parser().parse_args(["trace"])
        assert args.cc == "gcc"
        assert args.duration == 60.0
        assert args.component == [] and args.input == []

    def test_traced_run_prints_timeline(self, capsys):
        code = main(["trace", "--duration", "20", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "t (s)" in out
        assert "component" in out

    def test_component_and_window_filters(self, capsys):
        code = main(
            [
                "trace", "--duration", "20", "--seed", "1",
                "--component", "gcc,handover",
                "--t0", "5", "--t1", "15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for line in out.splitlines()[2:]:
            if "·" in line or "▶" in line:
                assert " gcc " in line or " handover " in line

    def test_metrics_flag_prints_registry(self, capsys):
        code = main(["trace", "--duration", "20", "--seed", "1", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sender/packets_sent" in out

    def test_export_then_merge_inputs(self, capsys, tmp_path):
        first = tmp_path / "s1.jsonl"
        second = tmp_path / "s2.jsonl"
        assert main(
            ["trace", "--duration", "15", "--seed", "1", "--out", str(first)]
        ) == 0
        assert main(
            ["trace", "--duration", "15", "--seed", "2", "--out", str(second)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["trace", "--input", str(first), "--input", str(second), "--metrics"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "t (s)" in out
        # Metrics from both runs merged: counters sum across inputs.
        assert "sender/packets_sent" in out

    def test_json_format_emits_jsonl_records(self, capsys):
        code = main(
            ["trace", "--duration", "15", "--seed", "1", "--format", "json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        records = [json.loads(line) for line in out.splitlines()]
        assert records, "expected at least one JSONL record"
        assert {record["type"] for record in records} <= {"event", "span"}
        assert any(record["name"] == "session.config" for record in records)

    def test_json_format_with_metrics_appends_metric_lines(self, capsys):
        code = main(
            [
                "trace", "--duration", "15", "--seed", "1",
                "--format", "json", "--metrics",
            ]
        )
        assert code == 0
        types = [
            json.loads(line)["type"]
            for line in capsys.readouterr().out.splitlines()
        ]
        assert "metric" in types
        # Trace records come first, the metric snapshot last.
        assert types.index("metric") > types.count("metric") - 1

    def test_json_format_matches_out_file(self, capsys, tmp_path):
        out_file = tmp_path / "run.jsonl"
        code = main(
            [
                "trace", "--duration", "15", "--seed", "1",
                "--format", "json", "--metrics", "--out", str(out_file),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert printed == out_file.read_text()


class TestDiagnose:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["diagnose"])
        assert args.cc == "gcc"
        assert args.duration == 60.0
        assert args.format == "text"
        assert args.warmup == 5.0
        assert args.lag_horizon == 2.0

    def test_acceptance_handover_ranked_first(self, capsys):
        """The issue's end-to-end criterion: a seeded GCC session whose
        playback-latency violation is attributed to handover, straight
        from the CLI."""
        code = main(["diagnose", "--cc", "gcc", "--duration", "60", "--seed", "1"])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        violation_index = next(
            i for i, line in enumerate(lines)
            if "playback_latency:" in line
        )
        # The line right below the violation is its top-ranked cause.
        top_cause = lines[violation_index + 1]
        assert top_cause.startswith("    ")
        assert "handover" in top_cause

    def test_json_output_validates(self, capsys, tmp_path):
        json_out = tmp_path / "diagnosis.json"
        code = main(
            [
                "diagnose", "--duration", "20", "--seed", "2",
                "--format", "json", "--json-out", str(json_out),
            ]
        )
        assert code == 0
        from repro.obs import validate_diagnosis

        printed = json.loads(capsys.readouterr().out)
        assert validate_diagnosis(printed) == []
        assert json.loads(json_out.read_text()) == printed

    def test_markdown_format(self, capsys):
        code = main(
            ["diagnose", "--duration", "20", "--seed", "2", "--format", "markdown"]
        )
        assert code == 0
        assert "| SLO | signal |" in capsys.readouterr().out

    def test_input_roundtrip_from_trace_export(self, capsys, tmp_path):
        trace_file = tmp_path / "run.jsonl"
        assert main(
            [
                "trace", "--cc", "gcc", "--duration", "20", "--seed", "2",
                "--out", str(trace_file),
            ]
        ) == 0
        capsys.readouterr()
        live = main(
            ["diagnose", "--duration", "20", "--seed", "2", "--format", "json"]
        )
        assert live == 0
        live_payload = json.loads(capsys.readouterr().out)
        assert main(
            ["diagnose", "--input", str(trace_file), "--format", "json"]
        ) == 0
        replayed = json.loads(capsys.readouterr().out)
        assert replayed == live_payload


class TestObsLevelFlags:
    def test_fleet_obs_defaults_off(self):
        args = build_parser().parse_args(["fleet"])
        assert args.obs == "off"

    def test_fleet_bare_obs_flag_means_trace(self):
        args = build_parser().parse_args(["fleet", "--obs"])
        assert args.obs == "trace"

    def test_fleet_obs_accepts_metrics(self):
        args = build_parser().parse_args(["fleet", "--obs", "metrics"])
        assert args.obs == "metrics"

    def test_fleet_obs_rejects_unknown_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fleet", "--obs", "loud"])

    def test_status_file_flags_parse(self):
        args = build_parser().parse_args(
            ["dataset", "--status-file", "s.json", "--status-interval", "0.5"]
        )
        assert args.status_file == "s.json"
        assert args.status_interval == 0.5
        assert build_parser().parse_args(["dataset"]).status_file is None


class TestWatch:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["watch"])
        assert args.status == "campaign_status.json"
        assert args.interval == 1.0
        assert args.once is False

    def test_once_without_status_exits_nonzero(self, capsys, tmp_path):
        code = main(
            ["watch", "--status", str(tmp_path / "absent.json"), "--once"]
        )
        assert code == 1
        assert "no campaign status" in capsys.readouterr().out

    def test_once_renders_a_written_status(self, capsys, tmp_path):
        from repro.obs import CampaignStatusWriter

        path = tmp_path / "status.json"
        writer = CampaignStatusWriter(str(path), interval=0.0, workers=2)
        writer.begin(4)

        class _Record:
            worker, unit, wall_time, cache_hit = "w0", "probe:s1", 2.0, False

        writer.note(_Record(), 1, 4)
        assert main(["watch", "--status", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "1/4 units" in out
        assert "probe:s1" in out

    def test_watch_exits_when_campaign_finishes(self, capsys, tmp_path):
        from repro.obs import CampaignStatusWriter

        path = tmp_path / "status.json"
        writer = CampaignStatusWriter(str(path), interval=0.0)
        writer.begin(1)
        writer.finish()
        # Not --once: the loop sees finished=True and returns.
        assert main(["watch", "--status", str(path), "--interval", "0.01"]) == 0
        assert "done" in capsys.readouterr().out


class TestTraceFollow:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.follow is None
        assert args.poll == 0.5
        assert args.idle_timeout is None

    def test_follow_prints_records_until_idle(self, capsys, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text(
            '{"type": "event", "name": "gcc.overuse", "t": 1.0}\n'
            '{"type": "event", "name": "jitter.gap", "t": 2.0}\n'
            '{"type": "event", "name": "loss.bu'  # in-progress tail
        )
        code = main(
            [
                "trace", "--follow", str(path),
                "--poll", "0.01", "--idle-timeout", "0.05",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "gcc.overuse" in out and "jitter.gap" in out
        assert "loss.bu" not in out  # partial tail withheld

    def test_follow_applies_component_filter(self, capsys, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text(
            '{"type": "event", "name": "gcc.overuse", "t": 1.0}\n'
            '{"type": "event", "name": "jitter.gap", "t": 2.0}\n'
        )
        code = main(
            [
                "trace", "--follow", str(path), "--component", "gcc",
                "--poll", "0.01", "--idle-timeout", "0.05",
                "--format", "json",
            ]
        )
        assert code == 0
        records = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert [record["name"] for record in records] == ["gcc.overuse"]


class TestFleetObsEndToEnd:
    def test_metrics_fleet_sweep_with_status_file(self, capsys, tmp_path):
        status = tmp_path / "status.json"
        code = main(
            [
                "fleet",
                "--cc", "static",
                "--densities", "1,2",
                "--seeds", "1",
                "--duration", "10",
                "--obs", "metrics",
                "--no-cache",
                "--status-file", str(status),
                "--status-interval", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-session QoE" in out
        # metrics level: no diagnosis layer, so no attribution column values
        assert status.exists()
        payload = json.loads(status.read_text())
        assert payload["finished"] is True
        assert payload["done"] == payload["total"] == 2
        # The dashboard renders that same file.
        assert main(["watch", "--status", str(status), "--once"]) == 0
        assert "2/2 units" in capsys.readouterr().out
