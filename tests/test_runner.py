"""Tests for the campaign runner: pool fan-out, cache, telemetry."""

import pytest

from repro.core.config import ScenarioConfig
from repro.experiments import (
    ExperimentSettings,
    run_channel_probe,
    run_matrix,
    run_ping_probe,
)
from repro.runner import (
    WORK_CHANNEL_PROBE,
    WORK_PING_PROBE,
    WORK_SESSION,
    CampaignRunner,
    ResultCache,
    WorkUnit,
    execute_unit,
)
from repro.runner.cache import MISS
from repro.runner.work import make_unit

QUICK = ExperimentSettings(duration=12.0, seeds=(1, 2), warmup=2.0)
CONFIGS = [
    ScenarioConfig(cc="static", environment="urban"),
    ScenarioConfig(cc="static", environment="rural"),
]


def _headline(result):
    return (
        result.config.label(),
        result.packets_sent,
        result.frames_decoded,
        len(result.packet_log),
        len(result.playback),
        result.packets_lost_radio,
        result.packets_dropped_buffer,
    )


class TestWorkUnit:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkUnit(kind="bogus", config=ScenarioConfig())

    def test_fingerprint_covers_config_fields(self):
        unit = make_unit(WORK_SESSION, ScenarioConfig(seed=7, duration=42.0))
        fp = unit.fingerprint()
        assert fp["config"]["seed"] == 7
        assert fp["config"]["duration"] == 42.0
        assert fp["kind"] == WORK_SESSION

    def test_params_canonically_sorted(self):
        a = make_unit(WORK_PING_PROBE, ScenarioConfig(), rate_hz=5.0, ping_bytes=92)
        b = make_unit(WORK_PING_PROBE, ScenarioConfig(), ping_bytes=92, rate_hz=5.0)
        assert a == b

    def test_execute_dispatches_probe_kinds(self):
        config = ScenarioConfig(cc="static", duration=5.0, seed=1)
        probe = execute_unit(make_unit(WORK_CHANNEL_PROBE, config))
        assert len(probe.uplink_samples) > 0
        pings = execute_unit(
            make_unit(WORK_PING_PROBE, config, rate_hz=5.0, ping_bytes=92)
        )
        assert len(pings) > 0


class TestCacheKeys:
    def test_stable_across_instances(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = make_unit(WORK_SESSION, ScenarioConfig(seed=3, duration=20.0))
        b = make_unit(WORK_SESSION, ScenarioConfig(seed=3, duration=20.0))
        assert cache.key(a) == cache.key(b)

    def test_sensitive_to_seed_duration_kind_and_extra(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = make_unit(WORK_SESSION, ScenarioConfig(seed=3, duration=20.0))
        keys = {
            cache.key(base),
            cache.key(make_unit(WORK_SESSION, ScenarioConfig(seed=4, duration=20.0))),
            cache.key(make_unit(WORK_SESSION, ScenarioConfig(seed=3, duration=21.0))),
            cache.key(
                make_unit(WORK_CHANNEL_PROBE, ScenarioConfig(seed=3, duration=20.0))
            ),
            cache.key(
                make_unit(
                    WORK_SESSION,
                    ScenarioConfig(seed=3, duration=20.0, extra={"a3": (2.0, 0.1)}),
                )
            ),
        }
        assert len(keys) == 5

    def test_roundtrip_and_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = make_unit(WORK_SESSION, ScenarioConfig(seed=1))
        assert cache.get(unit) is MISS
        cache.put(unit, {"payload": [1, 2, 3]})
        assert cache.get(unit) == {"payload": [1, 2, 3]}

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        unit = make_unit(WORK_SESSION, ScenarioConfig(seed=1))
        cache.put(unit, "ok")
        path = cache._path(cache.key(unit))
        path.write_bytes(b"not a pickle")
        assert cache.get(unit) is MISS
        assert not path.exists()

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in (1, 2, 3):
            cache.put(make_unit(WORK_SESSION, ScenarioConfig(seed=seed)), seed)
        stats = cache.stats()
        assert stats["entries"] == 3 and stats["bytes"] > 0
        assert cache.clear() == 3
        assert cache.stats()["entries"] == 0


class TestParallelEqualsSerial:
    def test_run_matrix_workers(self):
        serial = run_matrix(CONFIGS, QUICK, workers=1)
        parallel = run_matrix(CONFIGS, QUICK, workers=4)
        assert list(serial.keys()) == list(parallel.keys())
        for label in serial:
            assert [_headline(r) for r in serial[label]] == [
                _headline(r) for r in parallel[label]
            ]

    def test_channel_probe_workers(self):
        serial = run_channel_probe(CONFIGS[0], QUICK, workers=1)
        parallel = run_channel_probe(CONFIGS[0], QUICK, workers=4)
        assert serial.label == parallel.label
        assert len(serial.handovers) == len(parallel.handovers)
        assert serial.uplink_samples == parallel.uplink_samples
        assert serial.cells_seen == parallel.cells_seen
        assert serial.ping_pong == parallel.ping_pong

    def test_ping_probe_workers(self):
        serial = run_ping_probe(CONFIGS[0], QUICK, rate_hz=5.0, workers=1)
        parallel = run_ping_probe(CONFIGS[0], QUICK, rate_hz=5.0, workers=4)
        assert [(s.time, s.rtt, s.altitude) for s in serial] == [
            (s.time, s.rtt, s.altitude) for s in parallel
        ]


class TestCacheBehaviour:
    def test_warm_cache_skips_all_executions(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cold = CampaignRunner(1, cache=cache)
        first = run_matrix(CONFIGS, QUICK, runner=cold)
        expected_units = len(CONFIGS) * len(QUICK.seeds)
        assert cold.telemetry.executed == expected_units
        assert cold.telemetry.cache_misses == expected_units
        assert cold.telemetry.cache_hits == 0

        # A warm campaign must perform zero run_session executions.
        import repro.runner.work as work_module

        def _boom(config):
            raise AssertionError("run_session called despite warm cache")

        monkeypatch.setattr(work_module, "run_session", _boom)
        warm = CampaignRunner(1, cache=cache)
        second = run_matrix(CONFIGS, QUICK, runner=warm)
        assert warm.telemetry.cache_hits == expected_units
        assert warm.telemetry.executed == 0
        assert list(first.keys()) == list(second.keys())
        for label in first:
            assert [_headline(r) for r in first[label]] == [
                _headline(r) for r in second[label]
            ]

    def test_partial_cache_executes_only_missing_seeds(self, tmp_path):
        cache = ResultCache(tmp_path)
        narrow = ExperimentSettings(duration=12.0, seeds=(1,), warmup=2.0)
        run_matrix(CONFIGS, narrow, runner=CampaignRunner(1, cache=cache))
        wide = CampaignRunner(1, cache=cache)
        run_matrix(CONFIGS, QUICK, runner=wide)
        assert wide.telemetry.cache_hits == len(CONFIGS)  # seed 1 reused
        assert wide.telemetry.executed == len(CONFIGS)  # seed 2 fresh

    def test_no_cache_means_no_files(self, tmp_path):
        runner = CampaignRunner(1, cache=None)
        run_channel_probe(CONFIGS[0], QUICK, runner=runner)
        assert runner.telemetry.cache_hits == 0
        assert runner.telemetry.cache_misses == len(QUICK.seeds)


class TestTelemetryAndProgress:
    def test_records_per_unit(self):
        runner = CampaignRunner(1)
        run_channel_probe(CONFIGS[0], QUICK, runner=runner)
        assert len(runner.telemetry.runs) == len(QUICK.seeds)
        for record in runner.telemetry.runs:
            assert record.wall_end >= record.wall_start
            assert record.sim_duration == QUICK.duration
            assert record.sim_wall_ratio > 0
            assert record.worker == "main"
            assert record.unit.startswith("channel-probe:")
        assert "2 units" in runner.telemetry.summary()

    def test_progress_callback_invoked(self):
        seen = []
        runner = CampaignRunner(
            1, progress=lambda done, total, rec: seen.append((done, total))
        )
        run_channel_probe(CONFIGS[0], QUICK, runner=runner)
        assert seen == [(1, 2), (2, 2)]

    def test_pool_workers_stamped(self):
        runner = CampaignRunner(2)
        run_ping_probe(CONFIGS[0], QUICK, rate_hz=5.0, runner=runner)
        workers = {record.worker for record in runner.telemetry.runs}
        assert all(w.startswith("worker-") for w in workers)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            CampaignRunner(0)


# ----------------------------------------------------------------------
# seed-sweep batching (PR 8): planner + batched engine + resume
# ----------------------------------------------------------------------
from repro.runner import plan_batches  # noqa: E402
from repro.runner.work import WORK_FLEET  # noqa: E402

BATCH_SETTINGS = ExperimentSettings(duration=20.0, seeds=(0, 1, 2, 3, 4, 5), warmup=2.0)


def _probe_units(config, settings):
    return [
        make_unit(
            WORK_CHANNEL_PROBE,
            config.with_overrides(seed=seed, duration=settings.duration),
        )
        for seed in settings.seeds
    ]


class TestBatchPlanner:
    def test_groups_by_scenario_modulo_seed(self):
        units = _probe_units(CONFIGS[0], QUICK) + _probe_units(CONFIGS[1], QUICK)
        plans, scalar = plan_batches(list(enumerate(units)))
        assert scalar == []
        assert len(plans) == 2  # one sweep per scenario
        assert sorted(i for p in plans for i in p.indices) == list(range(len(units)))
        for plan in plans:
            environments = {u.config.environment for u in plan.units}
            assert len(environments) == 1

    def test_non_batchable_kinds_stay_scalar(self):
        config = ScenarioConfig(cc="static", duration=5.0)
        units = [
            make_unit(WORK_PING_PROBE, config.with_overrides(seed=s), rate_hz=5.0)
            for s in (1, 2)
        ] + [
            make_unit(WORK_SESSION, config.with_overrides(seed=s), obs=True)
            for s in (1, 2)
        ]
        plans, scalar = plan_batches(list(enumerate(units)))
        assert plans == []
        assert [i for i, _ in scalar] == list(range(len(units)))

    def test_fleet_units_batch_unless_instrumented(self):
        # Density sweeps plan their fleet units into per-worker
        # batches (executed whole, with per-unit cache fan-back);
        # instrumented fleets keep the scalar path like instrumented
        # sessions do.
        config = ScenarioConfig(cc="static", duration=5.0)
        units = [
            make_unit(WORK_FLEET, config.with_overrides(seed=s), num_sessions=2)
            for s in (1, 2, 3)
        ]
        plans, scalar = plan_batches(list(enumerate(units)))
        assert scalar == []
        assert len(plans) == 1 and plans[0].indices == (0, 1, 2)
        traced = [
            make_unit(
                WORK_FLEET, config.with_overrides(seed=s), num_sessions=2,
                obs=True,
            )
            for s in (1, 2)
        ]
        plans, scalar = plan_batches(list(enumerate(traced)))
        assert plans == []
        assert [i for i, _ in scalar] == [0, 1]

    def test_singleton_and_duplicate_seeds_stay_scalar(self):
        config = ScenarioConfig(cc="static", duration=5.0)
        lone = [make_unit(WORK_SESSION, config.with_overrides(seed=1))]
        plans, scalar = plan_batches(list(enumerate(lone)))
        assert plans == [] and len(scalar) == 1
        dupes = [
            make_unit(WORK_SESSION, config.with_overrides(seed=s))
            for s in (1, 2, 1)
        ]
        plans, scalar = plan_batches(list(enumerate(dupes)))
        assert len(plans) == 1 and plans[0].indices == (0, 1)
        assert [i for i, _ in scalar] == [2]

    def test_worker_chunking_splits_large_sweeps(self):
        units = _probe_units(CONFIGS[0], BATCH_SETTINGS)
        plans, scalar = plan_batches(list(enumerate(units)), workers=3)
        assert scalar == []
        assert len(plans) == 3
        assert all(len(p.units) == 2 for p in plans)


class TestBatchedCampaign:
    def test_batched_probe_matches_scalar_runner(self):
        scalar = run_channel_probe(
            CONFIGS[0], BATCH_SETTINGS, runner=CampaignRunner(1)
        )
        runner = CampaignRunner(1, batch=True)
        batched = run_channel_probe(CONFIGS[0], BATCH_SETTINGS, runner=runner)
        assert batched.uplink_samples == scalar.uplink_samples
        assert batched.altitudes == scalar.altitudes
        assert len(batched.handovers) == len(scalar.handovers)
        assert batched.ping_pong == scalar.ping_pong
        # per-unit telemetry survives batching
        assert runner.telemetry.executed == len(BATCH_SETTINGS.seeds)
        assert len(runner.telemetry.runs) == len(BATCH_SETTINGS.seeds)
        assert all(
            r.worker == f"main/batch{len(BATCH_SETTINGS.seeds)}"
            for r in runner.telemetry.runs
        )

    def test_interrupted_campaign_resumes_incrementally(self, tmp_path):
        """Interrupt after K of N units; the re-run executes only N-K
        and the merged result equals an uninterrupted campaign."""
        expected = run_channel_probe(
            CONFIGS[0], BATCH_SETTINGS, runner=CampaignRunner(1, batch=True)
        )
        total = len(BATCH_SETTINGS.seeds)
        interrupt_after = 2
        cache = ResultCache(tmp_path)

        class Interrupted(RuntimeError):
            pass

        def _abort(done, _total, _record):
            if done >= interrupt_after:
                raise Interrupted

        first = CampaignRunner(1, cache=cache, progress=_abort, batch=True)
        with pytest.raises(Interrupted):
            run_channel_probe(CONFIGS[0], BATCH_SETTINGS, runner=first)
        assert cache.stats()["entries"] == interrupt_after

        resumed = CampaignRunner(1, cache=cache, batch=True)
        merged = run_channel_probe(CONFIGS[0], BATCH_SETTINGS, runner=resumed)
        assert resumed.telemetry.cache_hits == interrupt_after
        assert resumed.telemetry.executed == total - interrupt_after
        assert merged.uplink_samples == expected.uplink_samples
        assert merged.altitudes == expected.altitudes
        assert len(merged.handovers) == len(expected.handovers)
        assert merged.ping_pong == expected.ping_pong


class TestMetricsLevelBatching:
    """Metrics-tier obs must keep the batch planner engaged (PR 10)."""

    def test_metrics_sessions_and_fleets_still_batch(self):
        from repro.runner.batch import batch_key

        config = ScenarioConfig(cc="static", duration=5.0)
        for kind, extra in (
            (WORK_SESSION, {}),
            (WORK_FLEET, {"num_sessions": 2}),
        ):
            units = [
                make_unit(
                    kind, config.with_overrides(seed=s),
                    obs="metrics", **extra,
                )
                for s in (1, 2, 3)
            ]
            assert all(batch_key(u) is not None for u in units)
            plans, scalar = plan_batches(list(enumerate(units)))
            assert scalar == []
            assert len(plans) == 1 and plans[0].indices == (0, 1, 2)

    def test_obs_tiers_never_share_a_group(self):
        from repro.runner.batch import batch_key

        config = ScenarioConfig(cc="static", duration=5.0)
        dark = make_unit(WORK_SESSION, config.with_overrides(seed=1))
        metered = make_unit(
            WORK_SESSION, config.with_overrides(seed=2), obs="metrics"
        )
        assert batch_key(dark) != batch_key(metered)

    def test_batched_metrics_fleet_campaign_carries_the_plane(self):
        settings = ExperimentSettings(duration=8.0, seeds=(1, 2), warmup=2.0)
        from repro.experiments.fleet import fleet_unit

        units = [
            fleet_unit(
                CONFIGS[0].with_overrides(seed=seed, duration=settings.duration),
                num_sessions=2,
                obs="metrics",
            )
            for seed in settings.seeds
        ]
        with CampaignRunner(1, batch=True) as runner:
            results = runner.run(units)
        assert runner.telemetry.executed == len(units)
        for result in results:
            plane = [
                r for r in result.extra["metrics"]
                if r["name"] == "fleet/ticks"
            ]
            assert len(plane) == 2  # one per member
            assert result.extra["obs_overhead"]["share"] >= 0.0
        # The campaign-side registry merged every fleet's plane.
        assert runner.metrics.get("fleet/ticks", member=0).value > 0


class TestTelemetryExport:
    def test_to_dict_roundtrips_every_run(self):
        runner = CampaignRunner(1)
        run_channel_probe(CONFIGS[0], QUICK, runner=runner)
        payload = runner.telemetry.to_dict()
        assert payload["executed"] == len(QUICK.seeds)
        assert payload["cache_hits"] == 0
        assert len(payload["runs"]) == len(QUICK.seeds)
        for entry in payload["runs"]:
            assert entry["unit"].startswith("channel-probe:")
            assert entry["wall_time"] >= 0.0
            assert entry["cache_hit"] is False
        assert payload["summary"] == runner.telemetry.summary()

    def test_write_json_is_valid_and_atomic(self, tmp_path):
        import json as json_module

        runner = CampaignRunner(1)
        run_channel_probe(CONFIGS[0], QUICK, runner=runner)
        path = tmp_path / "telemetry.json"
        runner.telemetry.write_json(path)
        loaded = json_module.loads(path.read_text())
        assert loaded == runner.telemetry.to_dict()
        assert not list(tmp_path.glob("*.tmp*"))


class TestCampaignStatusFile:
    def test_runner_maintains_the_status_file(self, tmp_path):
        from repro.obs import read_status

        path = tmp_path / "status.json"
        runner = CampaignRunner(1, status_path=str(path), status_interval=0.0)
        try:
            run_channel_probe(CONFIGS[0], QUICK, runner=runner)
        finally:
            runner.close()
        status = read_status(str(path))
        assert status["finished"] is True
        assert status["done"] == status["total"] == len(QUICK.seeds)
        assert status["executed"] == len(QUICK.seeds)
        assert status["workers"]  # per-worker activity recorded

    def test_fleet_campaign_status_reports_cell_occupancy(self, tmp_path):
        from repro.experiments.fleet import fleet_unit
        from repro.obs import read_status

        path = tmp_path / "status.json"
        settings = ExperimentSettings(duration=8.0, seeds=(1,), warmup=2.0)
        unit = fleet_unit(
            CONFIGS[0].with_overrides(seed=1, duration=settings.duration),
            num_sessions=2,
        )
        runner = CampaignRunner(1, status_path=str(path), status_interval=0.0)
        try:
            runner.run([unit])
        finally:
            runner.close()
        status = read_status(str(path))
        assert status["finished"] is True
        assert status["cells"]  # harvested from the fleet result
        for entry in status["cells"].values():
            assert entry["peak"] >= entry["last"] >= 0
