"""Tests for the discrete-event engine."""

import pytest

from repro.net.simulator import EventLoop, PeriodicTimer


class TestEventLoop:
    def test_starts_at_time_zero(self):
        assert EventLoop().now == 0.0

    def test_call_at_fires_at_scheduled_time(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.5, lambda: fired.append(loop.now))
        loop.run_until(2.0)
        assert fired == [1.5]

    def test_call_later_is_relative(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.0, lambda: loop.call_later(0.5, lambda: fired.append(loop.now)))
        loop.run_until(2.0)
        assert fired == [1.5]

    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.call_at(3.0, lambda: order.append("c"))
        loop.call_at(1.0, lambda: order.append("a"))
        loop.call_at(2.0, lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        loop = EventLoop()
        order = []
        for tag in ("first", "second", "third"):
            loop.call_at(1.0, lambda t=tag: order.append(t))
        loop.run()
        assert order == ["first", "second", "third"]

    def test_run_until_does_not_fire_later_events(self):
        loop = EventLoop()
        fired = []
        loop.call_at(5.0, lambda: fired.append("late"))
        loop.run_until(4.0)
        assert fired == []
        assert loop.now == 4.0

    def test_run_until_advances_clock_even_when_queue_empty(self):
        loop = EventLoop()
        loop.run_until(10.0)
        assert loop.now == 10.0

    def test_scheduling_in_the_past_raises(self):
        loop = EventLoop()
        loop.call_at(1.0, lambda: None)
        loop.run_until(1.0)
        with pytest.raises(ValueError):
            loop.call_at(0.5, lambda: None)

    def test_scheduling_nan_raises(self):
        with pytest.raises(ValueError):
            EventLoop().call_at(float("nan"), lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            EventLoop().call_later(-0.1, lambda: None)

    def test_cancel_prevents_callback(self):
        loop = EventLoop()
        fired = []
        handle = loop.call_at(1.0, lambda: fired.append(1))
        handle.cancel()
        loop.run()
        assert fired == []
        assert handle.cancelled

    def test_pending_counts_only_live_events(self):
        loop = EventLoop()
        handle = loop.call_at(1.0, lambda: None)
        loop.call_at(2.0, lambda: None)
        assert loop.pending() == 2
        handle.cancel()
        assert loop.pending() == 1

    def test_events_scheduled_during_run_execute(self):
        loop = EventLoop()
        fired = []

        def chain(depth: int) -> None:
            fired.append(loop.now)
            if depth > 0:
                loop.call_later(1.0, lambda: chain(depth - 1))

        loop.call_at(0.0, lambda: chain(3))
        loop.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_reentrant_run_raises(self):
        loop = EventLoop()
        errors = []

        def try_reenter():
            try:
                loop.run()
            except RuntimeError as exc:
                errors.append(str(exc))

        loop.call_at(0.5, try_reenter)
        loop.run()
        assert errors and "already running" in errors[0]


class TestPeriodicTimer:
    def test_fires_at_fixed_period(self):
        loop = EventLoop()
        ticks = []
        PeriodicTimer(loop, 0.5, lambda: ticks.append(loop.now))
        loop.run_until(2.0)
        assert ticks == [0.5, 1.0, 1.5, 2.0]

    def test_start_at_overrides_first_tick(self):
        loop = EventLoop()
        ticks = []
        PeriodicTimer(loop, 1.0, lambda: ticks.append(loop.now), start_at=0.0)
        loop.run_until(2.5)
        assert ticks == [0.0, 1.0, 2.0]

    def test_stop_halts_ticking(self):
        loop = EventLoop()
        ticks = []
        timer = PeriodicTimer(loop, 0.5, lambda: ticks.append(loop.now))
        loop.call_at(1.2, timer.stop)
        loop.run_until(5.0)
        assert ticks == [0.5, 1.0]
        assert timer.stopped

    def test_stop_from_within_callback(self):
        loop = EventLoop()
        ticks = []

        def tick():
            ticks.append(loop.now)
            if len(ticks) == 2:
                timer.stop()

        timer = PeriodicTimer(loop, 1.0, tick)
        loop.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_zero_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTimer(EventLoop(), 0.0, lambda: None)
