"""Tests for the discrete-event engine."""

import pytest

from repro.net.simulator import EventLoop, PeriodicTimer


class TestEventLoop:
    def test_starts_at_time_zero(self):
        assert EventLoop().now == 0.0

    def test_call_at_fires_at_scheduled_time(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.5, lambda: fired.append(loop.now))
        loop.run_until(2.0)
        assert fired == [1.5]

    def test_call_later_is_relative(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.0, lambda: loop.call_later(0.5, lambda: fired.append(loop.now)))
        loop.run_until(2.0)
        assert fired == [1.5]

    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.call_at(3.0, lambda: order.append("c"))
        loop.call_at(1.0, lambda: order.append("a"))
        loop.call_at(2.0, lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        loop = EventLoop()
        order = []
        for tag in ("first", "second", "third"):
            loop.call_at(1.0, lambda t=tag: order.append(t))
        loop.run()
        assert order == ["first", "second", "third"]

    def test_run_until_does_not_fire_later_events(self):
        loop = EventLoop()
        fired = []
        loop.call_at(5.0, lambda: fired.append("late"))
        loop.run_until(4.0)
        assert fired == []
        assert loop.now == 4.0

    def test_run_until_advances_clock_even_when_queue_empty(self):
        loop = EventLoop()
        loop.run_until(10.0)
        assert loop.now == 10.0

    def test_scheduling_in_the_past_raises(self):
        loop = EventLoop()
        loop.call_at(1.0, lambda: None)
        loop.run_until(1.0)
        with pytest.raises(ValueError):
            loop.call_at(0.5, lambda: None)

    def test_scheduling_nan_raises(self):
        with pytest.raises(ValueError):
            EventLoop().call_at(float("nan"), lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            EventLoop().call_later(-0.1, lambda: None)

    def test_cancel_prevents_callback(self):
        loop = EventLoop()
        fired = []
        handle = loop.call_at(1.0, lambda: fired.append(1))
        handle.cancel()
        loop.run()
        assert fired == []
        assert handle.cancelled

    def test_pending_counts_only_live_events(self):
        loop = EventLoop()
        handle = loop.call_at(1.0, lambda: None)
        loop.call_at(2.0, lambda: None)
        assert loop.pending() == 2
        handle.cancel()
        assert loop.pending() == 1

    def test_events_scheduled_during_run_execute(self):
        loop = EventLoop()
        fired = []

        def chain(depth: int) -> None:
            fired.append(loop.now)
            if depth > 0:
                loop.call_later(1.0, lambda: chain(depth - 1))

        loop.call_at(0.0, lambda: chain(3))
        loop.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_reentrant_run_raises(self):
        loop = EventLoop()
        errors = []

        def try_reenter():
            try:
                loop.run()
            except RuntimeError as exc:
                errors.append(str(exc))

        loop.call_at(0.5, try_reenter)
        loop.run()
        assert errors and "already running" in errors[0]


class TestEventLoopFastPath:
    """The tuple-heap fast path and the allocation-free schedulers."""

    def test_schedule_at_fires_like_call_at(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.5, lambda: fired.append(loop.now))
        loop.run_until(2.0)
        assert fired == [1.5]

    def test_schedule_later_is_relative(self):
        loop = EventLoop()
        fired = []
        loop.call_at(1.0, lambda: loop.schedule_later(0.25, lambda: fired.append(loop.now)))
        loop.run()
        assert fired == [1.25]

    def test_schedule_at_rejects_past_and_nan(self):
        loop = EventLoop()
        loop.call_at(1.0, lambda: None)
        loop.run_until(1.0)
        with pytest.raises(ValueError):
            loop.schedule_at(0.5, lambda: None)
        with pytest.raises(ValueError):
            loop.schedule_at(float("nan"), lambda: None)
        with pytest.raises(ValueError):
            loop.schedule_later(-0.1, lambda: None)

    def test_mixed_simultaneous_events_fire_in_scheduling_order(self):
        """call_at and schedule_at share one order sequence."""
        loop = EventLoop()
        order = []
        loop.call_at(1.0, lambda: order.append("a"))
        loop.schedule_at(1.0, lambda: order.append("b"))
        loop.call_at(1.0, lambda: order.append("c"))
        loop.schedule_at(1.0, lambda: order.append("d"))
        loop.run()
        assert order == ["a", "b", "c", "d"]

    def test_run_until_includes_boundary_event(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(2.0, lambda: fired.append(loop.now))
        loop.run_until(2.0)
        assert fired == [2.0]
        assert loop.now == 2.0

    def test_cancel_after_fire_keeps_pending_exact(self):
        """A handle cancelled after its callback ran must not decrement
        the live counter a second time (lazy deletion bookkeeping)."""
        loop = EventLoop()
        handle = loop.call_at(1.0, lambda: None)
        loop.schedule_at(2.0, lambda: None)
        loop.run_until(1.5)
        assert loop.pending() == 1
        handle.cancel()  # event already fired: must be a no-op
        assert loop.pending() == 1
        handle.cancel()  # idempotent either way
        assert loop.pending() == 1
        loop.run_until(2.0)
        assert loop.pending() == 0

    def test_pending_tracks_schedule_at_events(self):
        loop = EventLoop()
        for k in range(5):
            loop.schedule_at(float(k + 1), lambda: None)
        assert loop.pending() == 5
        loop.run_until(3.0)
        assert loop.pending() == 2

    def test_cancelled_entry_skipped_when_popped(self):
        """Lazy deletion: the cancelled entry stays heap-resident and
        is dropped on pop without firing or disturbing neighbours."""
        loop = EventLoop()
        fired = []
        loop.call_at(1.0, lambda: fired.append("keep-1"))
        victim = loop.call_at(1.0, lambda: fired.append("victim"))
        loop.call_at(1.0, lambda: fired.append("keep-2"))
        victim.cancel()
        loop.run()
        assert fired == ["keep-1", "keep-2"]

    def test_randomized_schedule_fires_in_deterministic_order(self):
        """Property check: any mix of call_at / schedule_at / cancels
        fires exactly the surviving events in (time, insertion) order."""
        import numpy as np

        rng = np.random.default_rng(1234)
        loop = EventLoop()
        fired = []
        expected = []
        handles = []
        for i in range(500):
            when = float(rng.integers(0, 50)) * 0.125
            tag = i
            if rng.random() < 0.5:
                handles.append((loop.call_at(when, lambda t=tag: fired.append(t)), when, tag))
            else:
                loop.schedule_at(when, lambda t=tag: fired.append(t))
            expected.append((when, i, tag))
        cancelled = set()
        for handle, _, tag in handles:
            if rng.random() < 0.3:
                handle.cancel()
                cancelled.add(tag)
        loop.run()
        survivors = [
            tag for when, i, tag in sorted(expected) if tag not in cancelled
        ]
        assert fired == survivors
        assert loop.pending() == 0


class TestPeriodicTimer:
    def test_fires_at_fixed_period(self):
        loop = EventLoop()
        ticks = []
        PeriodicTimer(loop, 0.5, lambda: ticks.append(loop.now))
        loop.run_until(2.0)
        assert ticks == [0.5, 1.0, 1.5, 2.0]

    def test_start_at_overrides_first_tick(self):
        loop = EventLoop()
        ticks = []
        PeriodicTimer(loop, 1.0, lambda: ticks.append(loop.now), start_at=0.0)
        loop.run_until(2.5)
        assert ticks == [0.0, 1.0, 2.0]

    def test_stop_halts_ticking(self):
        loop = EventLoop()
        ticks = []
        timer = PeriodicTimer(loop, 0.5, lambda: ticks.append(loop.now))
        loop.call_at(1.2, timer.stop)
        loop.run_until(5.0)
        assert ticks == [0.5, 1.0]
        assert timer.stopped

    def test_stop_from_within_callback(self):
        loop = EventLoop()
        ticks = []

        def tick():
            ticks.append(loop.now)
            if len(ticks) == 2:
                timer.stop()

        timer = PeriodicTimer(loop, 1.0, tick)
        loop.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_zero_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTimer(EventLoop(), 0.0, lambda: None)

    def test_no_drift_over_long_run(self):
        """A 30 FPS timer over a 600 s flight must fire exactly
        600 * 30 = 18000 times. The cumulative ``previous + period``
        re-arm loses a tick to accumulated float error; the anchored
        ``first + k * period`` form does not."""
        loop = EventLoop()
        ticks = 0

        def tick():
            nonlocal ticks
            ticks += 1

        PeriodicTimer(loop, 1.0 / 30.0, tick)
        loop.run_until(600.0)
        assert ticks == 600 * 30

    def test_ticks_are_anchored_not_cumulative(self):
        """Every tick time is exactly anchor + k * period (one rounded
        multiply-add from the anchor, never a running sum)."""
        loop = EventLoop()
        times = []
        period = 0.1  # not exactly representable in binary
        PeriodicTimer(loop, period, lambda: times.append(loop.now))
        loop.run_until(10.0)
        anchor = period  # first tick (loop started at t=0)
        assert times == [anchor + k * period for k in range(len(times))]
        assert len(times) == 100
