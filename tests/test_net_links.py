"""Tests for network links, loss models and path composition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    BernoulliLoss,
    CapacityLink,
    Datagram,
    DelayLine,
    EventLoop,
    GilbertElliottLoss,
    NetworkPath,
    NoLoss,
)


def make_datagram(size=1000):
    return Datagram(size_bytes=size, payload=None)


class TestDatagram:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Datagram(size_bytes=0, payload=None)

    def test_one_way_delay_nan_before_delivery(self):
        d = make_datagram()
        assert np.isnan(d.one_way_delay)

    def test_uids_are_unique(self):
        a, b = make_datagram(), make_datagram()
        assert a.uid != b.uid

    def test_uids_are_sequential(self):
        a, b, c = make_datagram(), make_datagram(), make_datagram()
        assert (b.uid, c.uid) == (a.uid + 1, a.uid + 2)

    def test_reset_restarts_uid_sequence(self):
        """Sessions reset the counter so a run's uids do not depend on
        how many datagrams earlier runs in the same process created."""
        from repro.net.packet import reset_datagram_ids

        reset_datagram_ids()
        first_pass = [make_datagram().uid for _ in range(3)]
        reset_datagram_ids()
        second_pass = [make_datagram().uid for _ in range(3)]
        assert first_pass == second_pass == [1, 2, 3]

    def test_datagram_is_slotted(self):
        d = make_datagram()
        assert not hasattr(d, "__dict__")
        with pytest.raises(AttributeError):
            d.unexpected_attribute = 1


class TestCapacityLink:
    def test_serialization_time_matches_rate(self):
        loop = EventLoop()
        arrived = []
        link = CapacityLink(loop, lambda t: 8e6, lambda d: arrived.append(loop.now))
        link.send(make_datagram(1000))  # 8000 bits at 8 Mbps = 1 ms
        loop.run()
        assert arrived == [pytest.approx(0.001)]

    def test_fifo_order_and_back_to_back_serialization(self):
        loop = EventLoop()
        arrived = []
        link = CapacityLink(loop, lambda t: 8e6, lambda d: arrived.append((d.uid, loop.now)))
        d1, d2 = make_datagram(1000), make_datagram(1000)
        link.send(d1)
        link.send(d2)
        loop.run()
        assert [uid for uid, _ in arrived] == [d1.uid, d2.uid]
        assert arrived[1][1] == pytest.approx(0.002)

    def test_buffer_overflow_drops_tail(self):
        loop = EventLoop()
        arrived = []
        link = CapacityLink(
            loop, lambda t: 8e6, lambda d: arrived.append(d), buffer_bytes=2500
        )
        for _ in range(5):
            link.send(make_datagram(1000))
        loop.run()
        # one in flight immediately + two queued (2000 <= 2500); rest dropped
        assert len(arrived) == 3
        assert link.stats.dropped_overflow == 2

    def test_outage_holds_queued_packets(self):
        loop = EventLoop()
        arrived = []
        link = CapacityLink(loop, lambda t: 8e6, lambda d: arrived.append(loop.now))
        link.set_up(False)
        link.send(make_datagram(1000))
        loop.call_at(1.0, lambda: link.set_up(True))
        loop.run()
        assert arrived == [pytest.approx(1.001)]

    def test_rate_change_applies_at_next_packet(self):
        loop = EventLoop()
        arrived = []
        rates = {0: 8e6}
        link = CapacityLink(
            loop, lambda t: 8e6 if t < 0.0005 else 4e6, lambda d: arrived.append(loop.now)
        )
        link.send(make_datagram(1000))
        link.send(make_datagram(1000))
        loop.run()
        assert arrived[0] == pytest.approx(0.001)
        assert arrived[1] == pytest.approx(0.001 + 0.002)

    def test_queuing_delay_estimate(self):
        loop = EventLoop()
        link = CapacityLink(loop, lambda t: 8e6, lambda d: None)
        link.set_up(False)
        link.send(make_datagram(1000))
        assert link.queuing_delay_estimate() == pytest.approx(0.001)

    def test_min_rate_floor_prevents_divide_blowup(self):
        loop = EventLoop()
        arrived = []
        link = CapacityLink(loop, lambda t: 0.0, lambda d: arrived.append(loop.now))
        link.send(make_datagram(125))  # 1000 bits at 10 kbps floor = 0.1 s
        loop.run()
        assert arrived == [pytest.approx(0.1)]


class TestDelayLine:
    def test_fixed_delay(self):
        loop = EventLoop()
        arrived = []
        line = DelayLine(loop, lambda d: arrived.append(loop.now), base_delay=0.05)
        line.send(make_datagram())
        loop.run()
        assert arrived == [pytest.approx(0.05)]

    def test_jitter_never_reorders(self):
        loop = EventLoop()
        arrived = []
        rng = np.random.default_rng(0)
        line = DelayLine(
            loop,
            lambda d: arrived.append(d.uid),
            base_delay=0.02,
            jitter_std=0.01,
            rng=rng,
        )
        datagrams = [make_datagram() for _ in range(50)]
        for i, d in enumerate(datagrams):
            loop.call_at(i * 0.001, lambda d=d: line.send(d))
        loop.run()
        assert arrived == [d.uid for d in datagrams]

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            DelayLine(EventLoop(), lambda d: None, base_delay=0.0, jitter_std=0.01)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayLine(EventLoop(), lambda d: None, base_delay=-1.0)


class TestLossModels:
    def test_no_loss_never_drops(self):
        model = NoLoss()
        assert not any(model.should_drop() for _ in range(1000))

    def test_bernoulli_rate(self):
        model = BernoulliLoss(0.3, np.random.default_rng(1))
        drops = sum(model.should_drop() for _ in range(20_000))
        assert drops / 20_000 == pytest.approx(0.3, abs=0.02)

    def test_bernoulli_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5, np.random.default_rng(0))

    def test_gilbert_elliott_stationary_rate(self):
        model = GilbertElliottLoss.from_rate_and_burst(
            0.01, 3.0, np.random.default_rng(2)
        )
        assert model.stationary_loss_rate == pytest.approx(0.01, rel=1e-6)
        drops = sum(model.should_drop() for _ in range(200_000))
        assert drops / 200_000 == pytest.approx(0.01, rel=0.25)

    def test_gilbert_elliott_burstiness(self):
        model = GilbertElliottLoss.from_rate_and_burst(
            0.02, 4.0, np.random.default_rng(3)
        )
        outcomes = [model.should_drop() for _ in range(200_000)]
        bursts = []
        run = 0
        for dropped in outcomes:
            if dropped:
                run += 1
            elif run:
                bursts.append(run)
                run = 0
        assert np.mean(bursts) == pytest.approx(4.0, rel=0.3)

    def test_absorbing_bad_state_rejected(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(0.1, 0.0, np.random.default_rng(0))

    def test_zero_rate_never_drops(self):
        model = GilbertElliottLoss.from_rate_and_burst(
            0.0, 3.0, np.random.default_rng(4)
        )
        assert not any(model.should_drop() for _ in range(1000))

    @given(
        rate=st.floats(0.0, 0.5),
        burst=st.floats(1.0, 10.0),
    )
    @settings(max_examples=30)
    def test_from_rate_and_burst_stationary_matches(self, rate, burst):
        model = GilbertElliottLoss.from_rate_and_burst(
            rate, burst, np.random.default_rng(0)
        )
        assert model.stationary_loss_rate == pytest.approx(rate, abs=1e-9)


class TestNetworkPath:
    def test_stamps_send_and_receive_times(self):
        loop = EventLoop()
        received = []
        path = NetworkPath(
            loop, lambda t: 8e6, received.append, base_delay=0.05, jitter_std=0.0
        )
        loop.call_at(1.0, lambda: path.send(make_datagram(1000)))
        loop.run()
        datagram = received[0]
        assert datagram.sent_at == pytest.approx(1.0)
        assert datagram.received_at == pytest.approx(1.0 + 0.001 + 0.05)
        assert datagram.one_way_delay == pytest.approx(0.051)

    def test_loss_gate_counts_drops(self):
        loop = EventLoop()
        received = []
        path = NetworkPath(
            loop,
            lambda t: 1e9,
            received.append,
            base_delay=0.0,
            jitter_std=0.0,
            loss_model=BernoulliLoss(1.0, np.random.default_rng(0)),
        )
        for _ in range(10):
            path.send(make_datagram())
        loop.run()
        assert received == []
        assert path.lost_packets == 10
        assert path.loss_rate == 1.0

    def test_jitter_requires_rng(self):
        loop = EventLoop()
        with pytest.raises(ValueError, match="rng is required"):
            NetworkPath(
                loop, lambda t: 8e6, lambda d: None, base_delay=0.0, jitter_std=0.001
            )

    def test_outage_propagates_to_capacity_link(self):
        loop = EventLoop()
        received = []
        path = NetworkPath(
            loop, lambda t: 8e6, received.append, base_delay=0.0, jitter_std=0.0
        )
        path.set_up(False)
        path.send(make_datagram(1000))
        loop.call_at(0.5, lambda: path.set_up(True))
        loop.run()
        assert received[0].received_at == pytest.approx(0.501)
