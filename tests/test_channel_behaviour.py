"""Behavioural tests of the cellular channel's paper-specific effects."""

import numpy as np
import pytest

from repro.cellular.channel import CellularChannel, ChannelConfig
from repro.cellular.handover import A3Config, HetSampler
from repro.cellular.operators import get_profile
from repro.cellular.propagation import PropagationConfig
from repro.core.config import ScenarioConfig
from repro.core.session import build_channel_config, build_trajectory, run_session
from repro.flight.trajectory import WaypointTrajectory, Position
from repro.net.simulator import EventLoop
from repro.util.rng import RngStreams


def hover_trajectory(altitude: float, duration: float = 400.0) -> WaypointTrajectory:
    """A stationary platform at a fixed altitude (isolates altitude effects)."""
    return WaypointTrajectory(
        [0.0, duration],
        [Position(50.0, 0.0, altitude), Position(51.0, 0.0, altitude)],
    )


def build_channel(trajectory, *, environment="urban", seed=6, config=None):
    streams = RngStreams(seed)
    profile = get_profile("P1", environment)
    layout = profile.build_layout(streams.derive("layout"))
    loop = EventLoop()
    channel_config = config or ChannelConfig(
        propagation=PropagationConfig.urban()
        if environment == "urban"
        else PropagationConfig.rural()
    )
    channel = CellularChannel(
        loop, layout, profile, trajectory, streams.child("ch"), config=channel_config
    )
    return loop, channel


class TestAltitudeEffects:
    def test_more_handovers_aloft_than_on_ground(self):
        results = {}
        for altitude in (1.5, 120.0):
            loop, channel = build_channel(hover_trajectory(altitude))
            channel.start()
            loop.run_until(400.0)
            results[altitude] = len(channel.engine.events)
        assert results[120.0] > results[1.5]

    def test_high_altitude_outlier_events_reduce_capacity(self):
        config = ChannelConfig(
            propagation=PropagationConfig.urban(),
            outlier_rate=0.5,  # force events for the test
        )
        loop, channel = build_channel(hover_trajectory(120.0), config=config)
        channel.start()
        loop.run_until(300.0)
        rates = np.array([s.uplink_bps for s in channel.samples])
        # Dropout episodes push capacity to a small fraction.
        assert rates.min() < 0.2 * np.median(rates)

    def test_no_outlier_events_below_threshold(self):
        config = ChannelConfig(
            propagation=PropagationConfig.urban(), outlier_rate=0.5
        )
        low_loop, low_channel = build_channel(hover_trajectory(60.0), config=config)
        low_channel.start()
        low_loop.run_until(300.0)
        low = np.array([s.uplink_bps for s in low_channel.samples])
        high_loop, high_channel = build_channel(hover_trajectory(120.0), config=config)
        high_channel.start()
        high_loop.run_until(300.0)
        high = np.array([s.uplink_bps for s in high_channel.samples])
        # Dropout episodes (deep collapses) appear above 100 m only.
        low_fraction = np.mean(low < 0.12 * np.median(low))
        high_fraction = np.mean(high < 0.12 * np.median(high))
        assert high_fraction > low_fraction


class TestPreHandoverDip:
    def test_capacity_dips_before_handovers(self):
        loop, channel = build_channel(hover_trajectory(120.0), seed=11)
        channel.start()
        loop.run_until(400.0)
        events = channel.engine.events
        if not events:
            pytest.skip("no handovers this seed")
        samples = channel.samples
        times = np.array([s.time for s in samples])
        rates = np.array([s.uplink_bps for s in samples])
        median = np.median(rates)
        dips = 0
        for event in events:
            window = rates[(times >= event.time - 1.0) & (times < event.time)]
            if window.size and window.min() < 0.7 * median:
                dips += 1
        # Most handovers are preceded by a visible capacity dip.
        assert dips >= len(events) * 0.5


class TestDaps:
    def test_make_before_break_keeps_paths_up(self):
        ups = []

        class FakePath:
            def set_up(self, up):
                ups.append(up)

        config = ChannelConfig(
            propagation=PropagationConfig.urban(), make_before_break=True
        )
        loop, channel = build_channel(hover_trajectory(120.0), seed=11, config=config)
        channel.attach_path(FakePath())
        channel.start()
        loop.run_until(400.0)
        assert len(channel.engine.events) > 0
        assert ups == []  # never silenced


class TestHetInjection:
    def test_custom_het_sampler_via_config(self):
        config = ScenarioConfig(
            cc="static",
            environment="urban",
            duration=60.0,
            seed=11,
            extra={
                "het": HetSampler(
                    body_median=0.5, body_sigma=0.01,
                    outlier_prob_air=0.0, outlier_prob_ground=0.0,
                )
            },
        )
        result = run_session(config)
        if result.handovers:
            for event in result.handovers:
                assert event.execution_time == pytest.approx(0.5, rel=0.1)

    def test_custom_a3_via_config(self):
        base = ScenarioConfig(cc="static", environment="urban", duration=90.0, seed=11)
        loose = run_session(
            base.with_overrides(
                extra={"a3": A3Config(hysteresis_db=0.5, time_to_trigger=0.1)}
            )
        )
        strict = run_session(
            base.with_overrides(
                extra={"a3": A3Config(hysteresis_db=9.0, time_to_trigger=1.0)}
            )
        )
        assert len(loose.handovers) >= len(strict.handovers)


class TestEnvironmentContrast:
    def test_urban_sees_more_cells_than_rural(self):
        cells = {}
        for environment in ("urban", "rural"):
            config = ScenarioConfig(
                cc="static", environment=environment, duration=120.0, seed=8
            )
            streams = RngStreams(8)
            trajectory = build_trajectory(config, streams)
            loop, channel = build_channel(
                trajectory,
                environment=environment,
                seed=8,
                config=build_channel_config(config),
            )
            channel.start()
            loop.run_until(120.0)
            cells[environment] = len(channel.cells_seen)
        assert cells["urban"] >= cells["rural"]
