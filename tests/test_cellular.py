"""Tests for the cellular substrate: layout, propagation, handover, channel."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cellular import (
    A3Config,
    Cell,
    CellLayout,
    CellularChannel,
    ChannelConfig,
    HandoverEngine,
    HetSampler,
    HET_SUCCESS_THRESHOLD,
    PropagationConfig,
    ShadowingProcess,
    antenna_gain_db,
    get_profile,
    grid_layout,
    path_loss_db,
    rsrp_dbm,
)
from repro.cellular.propagation import antenna_gain_db_array, path_loss_db_array
from repro.flight.trajectory import Position, paper_flight_trajectory
from repro.net.simulator import EventLoop
from repro.util.rng import RngStreams


def rng(label="cell"):
    return RngStreams(3).derive(label)


class TestLayout:
    def test_grid_layout_site_count(self):
        layout = grid_layout(num_sites=9, area_radius=1000, rng=rng(), sectors_per_site=2)
        assert len(layout) == 18

    def test_cell_ids_unique(self):
        layout = grid_layout(num_sites=16, area_radius=1000, rng=rng())
        ids = [c.cell_id for c in layout.cells]
        assert len(set(ids)) == len(ids)

    def test_exclusion_radius_respected(self):
        layout = grid_layout(
            num_sites=16, area_radius=1000, rng=rng(), exclusion_radius=400.0
        )
        for cell in layout.cells:
            assert math.hypot(cell.x, cell.y) >= 399.0

    def test_duplicate_ids_rejected(self):
        cell = Cell(cell_id=1, x=0, y=0, height=30)
        with pytest.raises(ValueError):
            CellLayout(cells=[cell, cell])

    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError):
            CellLayout(cells=[])

    def test_cell_by_id(self):
        layout = grid_layout(num_sites=4, area_radius=500, rng=rng())
        assert layout.cell_by_id(3).cell_id == 3
        with pytest.raises(KeyError):
            layout.cell_by_id(999)


class TestPropagation:
    def test_path_loss_increases_with_distance(self):
        config = PropagationConfig.urban()
        losses = [path_loss_db(d, 1.5, config) for d in (50, 200, 800, 3000)]
        assert losses == sorted(losses)

    def test_air_exponent_below_ground(self):
        config = PropagationConfig.urban()
        # Same distance, less loss at altitude (near free space).
        assert path_loss_db(1000, 120.0, config) < path_loss_db(1000, 1.5, config)

    def test_dual_slope_continuous_at_breakpoint(self):
        config = PropagationConfig.urban()
        below = path_loss_db(config.break_distance - 0.01, 1.5, config)
        above = path_loss_db(config.break_distance + 0.01, 1.5, config)
        assert abs(above - below) < 0.1

    def test_ground_user_in_main_lobe(self):
        config = PropagationConfig()
        cell = Cell(cell_id=0, x=0, y=0, height=30)
        ue = Position(300.0, 0.0, 1.5)
        gain = antenna_gain_db(ue, cell, config)
        assert gain > config.antenna_gain_max_db - 6.0

    def test_aerial_user_in_side_lobes(self):
        config = PropagationConfig()
        cell = Cell(cell_id=0, x=0, y=0, height=30)
        ue = Position(200.0, 0.0, 120.0)  # high elevation angle
        gain = antenna_gain_db(ue, cell, config)
        assert gain < config.antenna_gain_max_db - 10.0

    def test_rsrp_composition(self):
        config = PropagationConfig()
        cell = Cell(cell_id=0, x=0, y=0, height=30, tx_power_dbm=46.0)
        ue = Position(300.0, 0.0, 1.5)
        value = rsrp_dbm(ue, cell, shadow_db=0.0, config=config)
        expected = (
            46.0
            - path_loss_db(ue.distance_to(cell.position()), 1.5, config)
            + antenna_gain_db(ue, cell, config)
        )
        assert value == pytest.approx(expected)

    def test_shadowing_is_temporally_correlated(self):
        config = PropagationConfig()
        process = ShadowingProcess(4, config, rng("sh"))
        first = process.sample(0.0, 1.5).copy()
        soon = process.sample(0.1, 1.5).copy()
        later = process.sample(100.0, 1.5).copy()
        assert np.abs(soon - first).mean() < np.abs(later - first).mean() + 3.0
        assert np.abs(soon - first).mean() < 1.0

    def test_shadowing_std_scales_with_altitude(self):
        config = PropagationConfig(shadow_std_ground_db=6.0, shadow_std_air_db=2.0)
        process = ShadowingProcess(500, config, rng("sh2"))
        ground = process.sample(0.0, 0.0)
        air = process.sample(0.0, 120.0)
        assert np.std(air) < np.std(ground)


class TestVectorizedPropagation:
    """The array kernels behind the channel's precomputed geometry
    must agree with the scalar reference functions they replaced."""

    def _grid(self):
        layout = grid_layout(num_sites=6, area_radius=1500, rng=rng("vec"))
        # Span ground and air, below and above the breakpoint.
        positions = [
            Position(30.0, -20.0, 1.5),
            Position(250.0, 400.0, 40.0),
            Position(-900.0, 1200.0, 120.0),
            Position(2500.0, -1800.0, 80.0),
        ]
        return layout, positions

    def test_path_loss_array_matches_scalar(self):
        config = PropagationConfig.urban()
        layout, positions = self._grid()
        distances = np.array(
            [[p.distance_to(c.position()) for c in layout.cells] for p in positions]
        )
        altitudes = np.array([[p.altitude] for p in positions])
        grid = path_loss_db_array(distances, altitudes, config)
        assert grid.shape == (len(positions), len(layout))
        for i, p in enumerate(positions):
            for j, cell in enumerate(layout.cells):
                scalar = path_loss_db(p.distance_to(cell.position()), p.altitude, config)
                assert grid[i, j] == pytest.approx(scalar, rel=1e-12, abs=1e-9)

    def test_antenna_gain_array_matches_scalar(self):
        config = PropagationConfig()
        layout, positions = self._grid()
        horizontal = np.array(
            [
                [p.horizontal_distance_to(c.position()) for c in layout.cells]
                for p in positions
            ]
        )
        dz = np.array(
            [[p.altitude - c.height for c in layout.cells] for p in positions]
        )
        cell_ids = np.array([c.cell_id for c in layout.cells], dtype=float)
        downtilts = np.array([c.downtilt_deg for c in layout.cells])
        grid = antenna_gain_db_array(horizontal, dz, cell_ids, downtilts, config)
        for i, p in enumerate(positions):
            for j, cell in enumerate(layout.cells):
                scalar = antenna_gain_db(p, cell, config)
                assert grid[i, j] == pytest.approx(scalar, rel=1e-12, abs=1e-9)


class TestHetSampler:
    def test_body_below_success_threshold(self):
        sampler = HetSampler()
        generator = rng("het")
        values = [sampler.sample(generator, airborne=False) for _ in range(2000)]
        assert np.median(values) < HET_SUCCESS_THRESHOLD

    def test_air_has_heavier_tail(self):
        sampler = HetSampler()
        generator = rng("het2")
        air = [sampler.sample(generator, airborne=True) for _ in range(5000)]
        ground = [sampler.sample(generator, airborne=False) for _ in range(5000)]
        assert np.percentile(air, 99) > np.percentile(ground, 99)

    def test_samples_bounded(self):
        sampler = HetSampler(max_het=4.0)
        generator = rng("het3")
        values = [sampler.sample(generator, airborne=True) for _ in range(5000)]
        assert max(values) <= 4.0
        assert min(values) >= 0.005


class TestHandoverEngine:
    def make_engine(self, num_cells=3, **a3):
        config = A3Config(**a3) if a3 else A3Config()
        return HandoverEngine(num_cells, rng("ho"), config=config)

    def run_measurements(self, engine, series, period=0.1):
        events = []
        for i, rsrp in enumerate(series):
            event = engine.measure(i * period, np.asarray(rsrp, dtype=float))
            if event is not None:
                events.append(event)
        return events

    def test_initial_serving_is_strongest(self):
        engine = self.make_engine()
        engine.measure(0.0, np.array([-80.0, -60.0, -90.0]))
        assert engine.serving_cell == 1

    def test_handover_after_ttt(self):
        engine = self.make_engine(time_to_trigger=0.256, hysteresis_db=3.0)
        series = [[-60.0, -90.0, -90.0]] * 3 + [[-75.0, -60.0, -90.0]] * 10
        events = self.run_measurements(engine, series)
        assert len(events) == 1
        assert events[0].source_cell == 0
        assert events[0].target_cell == 1

    def test_no_handover_below_hysteresis(self):
        engine = self.make_engine(hysteresis_db=3.0)
        series = [[-60.0, -90.0, -90.0]] * 3 + [[-60.0, -58.0, -90.0]] * 20
        events = self.run_measurements(engine, series)
        assert events == []

    def test_short_excursion_does_not_trigger(self):
        engine = self.make_engine(time_to_trigger=0.5)
        series = (
            [[-60.0, -90.0, -90.0]] * 3
            + [[-80.0, -60.0, -90.0]] * 2  # 0.2 s < TTT
            + [[-60.0, -90.0, -90.0]] * 20
        )
        events = self.run_measurements(engine, series)
        assert events == []

    def test_prohibit_time_blocks_immediate_reversal(self):
        engine = self.make_engine(prohibit_time=2.0, time_to_trigger=0.2)
        series = [[-60.0, -90.0]] * 3 + [[-90.0, -60.0]] * 5 + [[-60.0, -90.0]] * 10
        events = self.run_measurements(engine, series)
        assert len(events) == 1  # the reversal is suppressed

    def test_ping_pong_counted(self):
        engine = self.make_engine(prohibit_time=0.0, time_to_trigger=0.2)
        series = (
            [[-60.0, -90.0]] * 3
            + [[-90.0, -60.0]] * 5
            + [[-60.0, -90.0]] * 5
        )
        events = self.run_measurements(engine, series)
        assert len(events) == 2
        assert engine.ping_pong_count() == 1

    def test_in_handover_blocks_measurements(self):
        engine = self.make_engine(time_to_trigger=0.2)
        engine.het_sampler = HetSampler(
            body_median=1.0, body_sigma=0.01, outlier_prob_air=0.0,
            outlier_prob_ground=0.0,
        )
        series = [[-60.0, -90.0]] * 3 + [[-90.0, -60.0]] * 5
        events = self.run_measurements(engine, series)
        assert len(events) == 1
        assert engine.in_handover

    def test_best_neighbour_margin(self):
        engine = self.make_engine()
        engine.measure(0.0, np.array([-60.0, -70.0, -75.0]))
        assert engine.best_neighbour_margin() == pytest.approx(-10.0)


class TestHandoverEdgeCases:
    """Edge cases pinned by the fleet-contention PR: degenerate
    layouts, prohibit-window candidate state and ping-pong windows."""

    def make_engine(self, num_cells=3, **a3):
        config = A3Config(**a3) if a3 else A3Config()
        return HandoverEngine(num_cells, rng("ho-edge"), config=config)

    def test_single_cell_layout_never_triggers_a3(self):
        engine = self.make_engine(num_cells=1)
        for i in range(100):
            # Wild RSRP swings on the only cell must never produce A3.
            level = -60.0 if i % 2 else -110.0
            assert engine.measure(i * 0.1, np.array([level])) is None
        assert engine.events == []
        assert engine.serving_cell == 0
        assert not engine.a3_pending()

    def test_margin_before_first_measurement_is_minus_inf(self):
        engine = self.make_engine()
        assert engine.filtered_rsrp is None
        assert engine.best_neighbour_margin() == float("-inf")

    def test_single_cell_margin_is_minus_inf(self):
        engine = self.make_engine(num_cells=1)
        engine.measure(0.0, np.array([-70.0]))
        assert engine.best_neighbour_margin() == float("-inf")

    def test_prohibit_window_resets_a3_candidate(self):
        engine = self.make_engine(
            num_cells=2, prohibit_time=2.0, time_to_trigger=0.2
        )
        engine.het_sampler = HetSampler(
            body_median=0.02, body_sigma=0.01, outlier_prob_air=0.0,
            outlier_prob_ground=0.0,
        )
        now = 0.0
        for _ in range(3):
            engine.measure(now, np.array([-60.0, -90.0]))
            now += 0.1
        # Strong neighbour -> handover 0 -> 1.
        event = None
        while event is None:
            event = engine.measure(now, np.array([-90.0, -60.0]))
            now += 0.1
        assert event.target_cell == 1
        # Source turns strong again immediately: the prohibit window
        # must swallow the A3 state, not just delay its execution.
        while now < event.time + event.execution_time + 2.0:
            assert engine.measure(now, np.array([-60.0, -90.0])) is None
            assert not engine.a3_pending()
            now += 0.1
        # After the window the condition must re-arm from scratch:
        # a fresh TTT (0.2 s) has to elapse before the reversal fires.
        reversal_start = now
        reversal = None
        while reversal is None:
            reversal = engine.measure(now, np.array([-60.0, -90.0]))
            now += 0.1
        assert reversal.target_cell == 0
        assert reversal.time - reversal_start >= engine.config.time_to_trigger

    def test_ping_pong_window_runs_from_completion(self):
        from repro.cellular.handover import HandoverEvent

        engine = self.make_engine(num_cells=2)
        # Return at t=7.5: 7.5 s after the *trigger*, but only 4.5 s
        # after the first handover *completed* (3 s HET) -> ping-pong.
        engine.events = [
            HandoverEvent(0.0, source_cell=0, target_cell=1,
                          execution_time=3.0),
            HandoverEvent(7.5, source_cell=1, target_cell=0,
                          execution_time=0.03),
        ]
        assert engine.ping_pong_count(window=5.0) == 1

    def test_ping_pong_window_still_bounded(self):
        from repro.cellular.handover import HandoverEvent

        engine = self.make_engine(num_cells=2)
        engine.events = [
            HandoverEvent(0.0, source_cell=0, target_cell=1,
                          execution_time=3.0),
            HandoverEvent(8.2, source_cell=1, target_cell=0,
                          execution_time=0.03),
        ]
        # 5.2 s after completion: outside the window.
        assert engine.ping_pong_count(window=5.0) == 0

    def test_ping_pong_requires_return_to_source(self):
        from repro.cellular.handover import HandoverEvent

        engine = self.make_engine(num_cells=3)
        engine.events = [
            HandoverEvent(0.0, source_cell=0, target_cell=1,
                          execution_time=0.03),
            HandoverEvent(1.0, source_cell=1, target_cell=2,
                          execution_time=0.03),
        ]
        assert engine.ping_pong_count(window=5.0) == 0

    def test_blocked_neighbour_is_never_selected(self):
        engine = self.make_engine(num_cells=2, time_to_trigger=0.2)
        engine.measure(0.0, np.array([-60.0, -90.0]), blocked=(1,))
        for i in range(1, 50):
            event = engine.measure(
                i * 0.1, np.array([-90.0, -60.0]), blocked=(1,)
            )
            assert event is None  # only neighbour is full -> stay
            assert not engine.a3_pending()
        assert engine.serving_cell == 0

    def test_negative_offset_sheds_crowded_serving_cell(self):
        engine = self.make_engine(
            num_cells=2, time_to_trigger=0.2, hysteresis_db=3.0
        )
        rsrp = np.array([-60.0, -62.0])  # neighbour 2 dB weaker: no A3
        engine.measure(0.0, rsrp)
        assert engine.serving_cell == 0
        offsets = np.array([-6.0, 0.0])  # serving cell crowded
        events = []
        for i in range(1, 30):
            event = engine.measure(i * 0.1, rsrp, offsets=offsets)
            if event is not None:
                events.append(event)
        assert len(events) == 1
        assert events[0].target_cell == 1


class TestCellularChannel:
    def build(self, environment="urban", platform_altitude=True, seed=4):
        streams = RngStreams(seed)
        profile = get_profile("P1", environment)
        layout = profile.build_layout(streams.derive("layout"))
        trajectory = paper_flight_trajectory()
        loop = EventLoop()
        channel = CellularChannel(
            loop, layout, profile, trajectory, streams.child("ch"),
            config=ChannelConfig(
                propagation=PropagationConfig.urban()
                if environment == "urban"
                else PropagationConfig.rural()
            ),
        )
        return loop, channel

    def test_capacity_positive_and_capped(self):
        loop, channel = self.build()
        channel.start()
        loop.run_until(60.0)
        rates = [s.uplink_bps for s in channel.samples]
        assert all(r > 0 for r in rates)
        assert max(rates) <= channel.profile.uplink_plan_cap

    def test_samples_at_measurement_period(self):
        loop, channel = self.build()
        channel.start()
        loop.run_until(10.0)
        assert len(channel.samples) == pytest.approx(100, abs=2)

    def test_rssi_reported_at_one_hz(self):
        loop, channel = self.build()
        channel.start()
        loop.run_until(30.0)
        assert len(channel.rssi_log) == pytest.approx(30, abs=2)

    def test_handover_outage_silences_paths(self):
        loop, channel = self.build()
        ups = []

        class FakePath:
            def set_up(self, up):
                ups.append(up)

        channel.attach_path(FakePath())
        channel.start()
        loop.run_until(300.0)
        if channel.engine.events:
            assert False in ups and True in ups
            assert ups.count(False) == ups.count(True)

    def test_double_start_rejected(self):
        loop, channel = self.build()
        channel.start()
        with pytest.raises(RuntimeError):
            channel.start()

    def test_urban_capacity_exceeds_rural(self):
        loop_u, urban = self.build("urban")
        urban.start()
        loop_u.run_until(120.0)
        loop_r, rural = self.build("rural")
        rural.start()
        loop_r.run_until(120.0)
        mean_urban = np.mean([s.uplink_bps for s in urban.samples])
        mean_rural = np.mean([s.uplink_bps for s in rural.samples])
        assert mean_urban > 1.5 * mean_rural


class TestOperatorProfiles:
    def test_known_profiles(self):
        for operator in ("P1", "P2"):
            for environment in ("urban", "rural"):
                profile = get_profile(operator, environment)
                assert profile.name == operator

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            get_profile("P3", "urban")

    def test_p2_rural_denser_than_p1(self):
        assert get_profile("P2", "rural").sites > get_profile("P1", "rural").sites

    @given(st.integers(1, 30))
    @settings(max_examples=10, deadline=None)
    def test_layout_size_matches_profile(self, sites):
        layout = grid_layout(num_sites=sites, area_radius=1000, rng=rng("g"))
        assert len(layout) == 2 * sites
