"""Tests for the text-rendering helpers."""

import pytest

from repro.analysis import (
    format_table,
    render_boxplots,
    render_cdf,
    render_sparkline,
)
from repro.metrics import BoxplotSummary, Cdf


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [["xx", "1"], ["y", "22"]])
        lines = text.splitlines()
        assert lines[0].startswith("a ")
        assert all(len(line) >= 6 for line in lines)

    def test_title_prepended(self):
        text = format_table(["x"], [["1"]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_non_string_cells(self):
        text = format_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text


class TestRenderCdf:
    def test_values_match_cdf(self):
        cdf = Cdf.from_samples([1.0, 2.0, 3.0, 4.0])
        text = render_cdf({"series": cdf}, [2.5], title="t")
        assert "0.500" in text

    def test_multiple_series_columns(self):
        a = Cdf.from_samples([1.0])
        b = Cdf.from_samples([2.0])
        text = render_cdf({"a": a, "b": b}, [1.5], title="t")
        header = text.splitlines()[1]
        assert "a" in header and "b" in header


class TestRenderBoxplots:
    def test_summary_row(self):
        summary = BoxplotSummary.from_samples([1.0, 2.0, 3.0])
        text = render_boxplots({"s": summary}, title="box")
        assert "2.00" in text  # median

    def test_none_rendered_as_dash(self):
        text = render_boxplots({"empty": None}, title="box")
        assert "-" in text

    def test_scaling(self):
        summary = BoxplotSummary.from_samples([0.5])
        text = render_boxplots({"s": summary}, title="box", scale=1000.0)
        assert "500.00" in text


class TestSparkline:
    def test_empty_series(self):
        assert "no data" in render_sparkline([], label="x")

    def test_reports_extrema(self):
        text = render_sparkline([1.0, 5.0, 2.0])
        assert "min=1" in text and "max=5" in text

    def test_width_bounded(self):
        text = render_sparkline(list(range(10_000)), width=50)
        body = text[text.index("[") + 1 : text.index("]")]
        assert len(body) <= 120


class TestDatasetParsing:
    """The released-parsing-scripts equivalent works from files alone."""

    @pytest.fixture(scope="class")
    def dataset(self, tmp_path_factory):
        from repro import ScenarioConfig, run_session
        from repro.traces import export_session

        root = tmp_path_factory.mktemp("dataset")
        for cc in ("static", "gcc"):
            config = ScenarioConfig(cc=cc, environment="urban", duration=20.0, seed=4)
            export_session(run_session(config), root / config.label())
        return root

    def test_analyze_run(self, dataset):
        from repro.analysis import analyze_run
        from repro.traces import list_runs

        analysis = analyze_run(list_runs(dataset)[0])
        assert analysis.packets > 500
        assert analysis.goodput_mbps > 1.0
        assert analysis.owd_median_ms > 10.0

    def test_analyze_dataset_groups_series(self, dataset):
        from repro.analysis import analyze_dataset

        report = analyze_dataset(dataset)
        assert len(report.runs) == 2
        assert len(report.by_series()) == 2
        text = report.render()
        assert "goodput" in text

    def test_empty_dataset_rejected(self, tmp_path):
        from repro.analysis import analyze_dataset

        with pytest.raises(ValueError):
            analyze_dataset(tmp_path)
