"""Tests for the multipath extension and DAPS handovers."""

import numpy as np
import pytest

from repro import ScenarioConfig, run_session
from repro.multipath import DedupReceiver, MultipathUplink, run_multipath_session
from repro.net.packet import Datagram
from repro.rtp.packets import RtpPacket


class FakePath:
    def __init__(self):
        self.sent = []

    def send(self, datagram):
        self.sent.append(datagram)


def rtp(seq):
    return RtpPacket(ssrc=1, sequence=seq, timestamp=0, payload_size=100)


class TestMultipathUplink:
    def test_duplicate_sends_on_all_paths(self):
        paths = [FakePath(), FakePath()]
        uplink = MultipathUplink(paths, mode="duplicate")
        uplink.send(Datagram(size_bytes=100, payload=rtp(0)))
        assert len(paths[0].sent) == 1
        assert len(paths[1].sent) == 1
        # Independent datagram objects share the RTP payload.
        assert paths[0].sent[0] is not paths[1].sent[0]
        assert paths[0].sent[0].payload is paths[1].sent[0].payload

    def test_roundrobin_alternates(self):
        paths = [FakePath(), FakePath()]
        uplink = MultipathUplink(paths, mode="roundrobin")
        for seq in range(4):
            uplink.send(Datagram(size_bytes=100, payload=rtp(seq)))
        assert len(paths[0].sent) == 2
        assert len(paths[1].sent) == 2
        assert uplink.sent_per_path == [2, 2]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MultipathUplink([FakePath()], mode="bogus")

    def test_empty_paths_rejected(self):
        with pytest.raises(ValueError):
            MultipathUplink([])


class TestDedupReceiver:
    class FakeReceiver:
        def __init__(self):
            self.received = []

        def on_datagram(self, datagram):
            self.received.append(datagram.payload.sequence)

    def test_first_copy_wins(self):
        inner = self.FakeReceiver()
        dedup = DedupReceiver(inner)
        dedup.on_datagram(Datagram(size_bytes=100, payload=rtp(5)))
        dedup.on_datagram(Datagram(size_bytes=100, payload=rtp(5)))
        assert inner.received == [5]
        assert dedup.duplicates == 1

    def test_distinct_sequences_pass(self):
        inner = self.FakeReceiver()
        dedup = DedupReceiver(inner)
        for seq in range(10):
            dedup.on_datagram(Datagram(size_bytes=100, payload=rtp(seq)))
        assert inner.received == list(range(10))
        assert dedup.duplicates == 0

    def test_seen_set_bounded(self):
        inner = self.FakeReceiver()
        dedup = DedupReceiver(inner, window=100)
        for seq in range(1000):
            dedup.on_datagram(Datagram(size_bytes=100, payload=rtp(seq % (1 << 16))))
        assert len(dedup._seen) <= 250


class TestMultipathSession:
    def test_adaptive_workload_rejected(self):
        with pytest.raises(ValueError):
            run_multipath_session(ScenarioConfig(cc="gcc", duration=10.0))

    def test_duplicate_mode_improves_delay_tail(self):
        config = ScenarioConfig(
            cc="static", environment="rural", duration=60.0, seed=13
        )
        single = run_session(config)
        multi = run_multipath_session(config, mode="duplicate")
        single_p99 = np.percentile(
            [e.received_at - e.sent_at for e in single.packet_log], 99
        )
        multi_p99 = np.percentile(
            [e.received_at - e.sent_at for e in multi.packet_log], 99
        )
        assert multi_p99 <= single_p99
        assert multi.duplicates_dropped > 0

    def test_roundrobin_splits_evenly(self):
        config = ScenarioConfig(cc="static", environment="rural", duration=20.0, seed=3)
        result = run_multipath_session(config, mode="roundrobin")
        a, b = result.sent_per_path
        assert abs(a - b) <= 1
        assert result.duplicates_dropped == 0

    def test_two_independent_channels(self):
        config = ScenarioConfig(cc="static", environment="rural", duration=60.0, seed=13)
        result = run_multipath_session(config)
        assert len(result.handovers_per_path) == 2
        # Handover times on the two networks are not identical.
        times_a = [e.time for e in result.handovers_per_path[0]]
        times_b = [e.time for e in result.handovers_per_path[1]]
        assert times_a != times_b or (not times_a and not times_b)


class TestDaps:
    def test_daps_removes_outages(self):
        base = ScenarioConfig(
            cc="static", environment="urban", duration=90.0, seed=17
        )
        legacy = run_session(base)
        daps = run_session(
            base.with_overrides(extra={"make_before_break": True})
        )
        # Both see handovers...
        assert len(daps.handovers) > 0
        legacy_p99 = np.percentile(
            [e.received_at - e.sent_at for e in legacy.packet_log], 99.5
        )
        daps_p99 = np.percentile(
            [e.received_at - e.sent_at for e in daps.packet_log], 99.5
        )
        # ...but DAPS trims the outage-driven tail.
        assert daps_p99 <= legacy_p99
