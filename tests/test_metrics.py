"""Tests for statistics primitives and metric reductions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cellular.handover import HandoverEvent
from repro.core.receiver import PacketLogEntry
from repro.metrics import (
    BoxplotSummary,
    Cdf,
    HandoverMetrics,
    HoRatioSummary,
    StallMetrics,
    average_goodput,
    fps_series,
    goodput_series,
    handover_latency_ratios,
    latency_ratio_in_window,
    one_way_delays,
    ssim_samples,
    windowed_rate,
)
from repro.video.player import PlaybackRecord


def make_entry(seq, sent, received, size=1200, frame=0):
    return PacketLogEntry(
        sequence=seq, sent_at=sent, received_at=received, size_bytes=size, frame_id=frame
    )


def make_record(frame_id, play_time, encode_time=None, ssim=0.9):
    return PlaybackRecord(
        frame_id=frame_id,
        play_time=play_time,
        encode_time=encode_time if encode_time is not None else play_time - 0.2,
        ssim=ssim,
        complete=True,
    )


class TestBoxplotSummary:
    def test_five_numbers(self):
        summary = BoxplotSummary.from_samples(list(range(1, 101)))
        assert summary.minimum == 1
        assert summary.maximum == 100
        assert summary.median == pytest.approx(50.5)
        assert summary.q1 == pytest.approx(25.75)
        assert summary.q3 == pytest.approx(75.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxplotSummary.from_samples([])

    def test_outliers_above_whisker(self):
        samples = [1.0] * 50 + [100.0]
        summary = BoxplotSummary.from_samples(samples)
        assert summary.outliers_above(samples) == [100.0]

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_ordering_invariant(self, samples):
        s = BoxplotSummary.from_samples(samples)
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum


class TestCdf:
    def test_fraction_below(self):
        cdf = Cdf.from_samples([1, 2, 3, 4, 5])
        assert cdf.fraction_below(3) == pytest.approx(0.6)
        assert cdf.fraction_below(0) == 0.0
        assert cdf.fraction_below(10) == 1.0

    def test_fraction_above_complements(self):
        cdf = Cdf.from_samples([1, 2, 3, 4])
        assert cdf.fraction_above(2) == pytest.approx(0.5)

    def test_percentile(self):
        cdf = Cdf.from_samples(list(range(101)))
        assert cdf.percentile(50) == pytest.approx(50)

    def test_evaluate_returns_curve(self):
        cdf = Cdf.from_samples([1.0, 2.0])
        curve = cdf.evaluate([0.5, 1.5, 2.5])
        assert curve == [(0.5, 0.0), (1.5, 0.5), (2.5, 1.0)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([])

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=100), st.floats(0, 1e6))
    def test_monotone(self, samples, x):
        cdf = Cdf.from_samples(samples)
        assert cdf.fraction_below(x) <= cdf.fraction_below(x + 1.0)


class TestWindowedRate:
    def test_constant_stream(self):
        times = [i * 0.01 for i in range(200)]  # 100 pkt/s
        sizes = [1250] * 200  # 1 Mbps at 100 pkt/s... 1250*8*100 = 1 Mbps
        series = windowed_rate(times, sizes, window=1.0, t_start=0.0, t_end=2.0)
        assert len(series) == 2
        assert series[0][1] == pytest.approx(1e6, rel=0.05)

    def test_empty_input(self):
        assert windowed_rate([], [], window=1.0) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            windowed_rate([1.0], [100], window=0.0)


class TestNetworkMetrics:
    def test_one_way_delays(self):
        log = [make_entry(0, 1.0, 1.05), make_entry(1, 2.0, 2.10)]
        assert one_way_delays(log) == [
            pytest.approx(0.05),
            pytest.approx(0.10),
        ]

    def test_handover_metrics_frequency(self):
        events = [
            HandoverEvent(time=t, source_cell=0, target_cell=1, execution_time=0.03)
            for t in (10.0, 20.0, 30.0)
        ]
        metrics = HandoverMetrics.from_events(events, duration=60.0)
        assert metrics.frequency_per_s == pytest.approx(0.05)
        assert metrics.successful_fraction == 1.0

    def test_handover_metrics_without_events(self):
        metrics = HandoverMetrics.from_events([], duration=60.0)
        assert metrics.frequency_per_s == 0.0
        assert metrics.het_summary() is None

    def test_average_goodput_with_warmup(self):
        log = [make_entry(i, i * 0.1, i * 0.1 + 0.05, size=1000) for i in range(100)]
        # 10 packets/s x 1000 B = 80 kbps.
        rate = average_goodput(log, duration=10.0, warmup=0.0)
        assert rate == pytest.approx(80_000, rel=0.05)

    def test_goodput_series_covers_duration(self):
        log = [make_entry(i, i * 0.5, i * 0.5 + 0.05) for i in range(10)]
        series = goodput_series(log, duration=10.0)
        assert len(series) == 10


class TestVideoMetrics:
    def test_fps_series_counts_frames(self):
        playback = [make_record(i, i / 30.0) for i in range(90)]
        series = fps_series(playback, duration=3.0)
        assert [value for _, value in series] == pytest.approx([30, 30, 30])

    def test_ssim_samples_pad_unplayed(self):
        playback = [make_record(i, i / 30.0, ssim=0.8) for i in range(10)]
        samples = ssim_samples(playback, frames_encoded=15)
        assert len(samples) == 15
        assert samples.count(0.0) == 5

    def test_stall_detection(self):
        playback = [
            make_record(0, 0.0),
            make_record(1, 0.033),
            make_record(2, 0.5),  # 467 ms gap: stall
            make_record(3, 0.533),
        ]
        metrics = StallMetrics.from_playback(playback, duration=60.0)
        assert metrics.stall_count == 1
        assert metrics.stalls_per_minute == pytest.approx(1.0)
        assert metrics.longest_stall == pytest.approx(0.467)

    def test_no_stalls_on_smooth_playback(self):
        playback = [make_record(i, i / 30.0) for i in range(300)]
        metrics = StallMetrics.from_playback(playback, duration=10.0)
        assert metrics.stall_count == 0


class TestHoWindowAnalysis:
    def test_ratio_in_window(self):
        times = np.array([0.1 * i for i in range(20)])
        delays = np.array([0.02] * 10 + [0.1] * 10)
        ratio = latency_ratio_in_window(times, delays, 0.5, 1.5)
        assert ratio == pytest.approx(5.0)

    def test_window_with_too_few_samples(self):
        times = np.array([0.0, 10.0])
        delays = np.array([0.02, 0.02])
        assert latency_ratio_in_window(times, delays, 0.0, 1.0) is None

    def test_before_window_catches_pre_ho_spike(self):
        # Packets sent just before the HO see growing delays.
        log = []
        for i in range(100):
            t = i * 0.01
            delay = 0.02 if t < 0.5 else 0.02 + (t - 0.5) * 0.3
            log.append(make_entry(i, t, t + delay))
        events = [
            HandoverEvent(time=1.0, source_cell=0, target_cell=1, execution_time=0.03)
        ]
        ratios = handover_latency_ratios(log, events)
        assert len(ratios) == 1
        assert ratios[0].before_ratio == pytest.approx(
            (0.02 + 0.5 * 0.3) / 0.02, rel=0.1
        )

    def test_summary_aggregates(self):
        log = [make_entry(i, i * 0.01, i * 0.01 + 0.02) for i in range(400)]
        events = [
            HandoverEvent(time=2.0, source_cell=0, target_cell=1, execution_time=0.03)
        ]
        summary = HoRatioSummary.from_ratios(handover_latency_ratios(log, events))
        assert summary.before is not None
        assert summary.before.mean == pytest.approx(1.0, abs=0.01)
